"""Last-level cache with Intel DDIO's restricted allocation ways.

DDIO lets DMA writes allocate directly into the LLC instead of going
to memory — but only into a small number of ways (2 on the paper's
servers, ref. [18]). The paper's P2M workload uses buffers larger than
that slice, so in steady state every DMA write misses, allocates, and
evicts a dirty DMA line — memory write bandwidth is unchanged versus
DDIO-off (§2.1). Smaller buffers fit and are absorbed entirely.

The model is a set-associative tag store with per-line dirty and
is-DMA bits. DMA allocations respect the DDIO way budget by evicting
the LRU *DMA-tagged* line of the set once the budget is exceeded;
core fills use plain LRU over all ways.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.sim.records import CACHELINE_BYTES


class _Line:
    __slots__ = ("addr", "dirty", "is_dma")

    def __init__(self, addr: int, dirty: bool, is_dma: bool):
        self.addr = addr
        self.dirty = dirty
        self.is_dma = is_dma


class LastLevelCache:
    """Set-associative LLC model with a DDIO way budget.

    Args:
        size_bytes: total capacity.
        ways: associativity.
        ddio_ways: maximum ways per set that DMA lines may occupy.

    Sets are kept as MRU-first lists of :class:`_Line`.
    """

    def __init__(self, size_bytes: int, ways: int, ddio_ways: int = 2):
        if size_bytes <= 0 or ways <= 0:
            raise ValueError("size and ways must be positive")
        if ddio_ways < 0 or ddio_ways > ways:
            raise ValueError("ddio_ways must be within [0, ways]")
        self.ways = ways
        self.ddio_ways = ddio_ways
        self.n_sets = max(1, size_bytes // (ways * CACHELINE_BYTES))
        self._sets: List[List[_Line]] = [[] for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0

    @property
    def size_bytes(self) -> int:
        """Effective capacity after set rounding."""
        return self.n_sets * self.ways * CACHELINE_BYTES

    @property
    def ddio_capacity_bytes(self) -> int:
        """Capacity of the slice DDIO is allowed to use."""
        return self.n_sets * self.ddio_ways * CACHELINE_BYTES

    def _set_for(self, line_addr: int) -> List[_Line]:
        return self._sets[line_addr % self.n_sets]

    def _find(self, lines: List[_Line], addr: int) -> Optional[int]:
        for i, line in enumerate(lines):
            if line.addr == addr:
                return i
        return None

    def lookup_read(self, line_addr: int, allocate: bool = True) -> Tuple[bool, Optional[int]]:
        """Read lookup. Returns ``(hit, evicted_dirty_addr)``.

        On a miss with ``allocate``, the fetched line is installed
        clean via LRU; if the victim is dirty its address is returned
        so the caller can issue the writeback.
        """
        lines = self._set_for(line_addr)
        idx = self._find(lines, line_addr)
        if idx is not None:
            self.hits += 1
            lines.insert(0, lines.pop(idx))
            return True, None
        self.misses += 1
        evicted = None
        if allocate:
            evicted = self._install(lines, _Line(line_addr, dirty=False, is_dma=False))
        return False, evicted

    def write_allocate_ddio(self, line_addr: int) -> Tuple[str, Optional[int]]:
        """DDIO DMA write. Returns ``(outcome, evicted_dirty_addr)``.

        Outcomes: ``"hit"`` (updated in place), ``"alloc"`` (installed
        dirty, possibly evicting — the steady-state thrash path for
        large buffers).
        """
        lines = self._set_for(line_addr)
        idx = self._find(lines, line_addr)
        if idx is not None:
            self.hits += 1
            line = lines.pop(idx)
            line.dirty = True
            line.is_dma = True
            lines.insert(0, line)
            return "hit", None
        self.misses += 1
        evicted = self._install_dma(lines, _Line(line_addr, dirty=True, is_dma=True))
        return "alloc", evicted

    def writeback_update(self, line_addr: int) -> bool:
        """Mark a resident line dirty (core writeback). Returns hit."""
        lines = self._set_for(line_addr)
        idx = self._find(lines, line_addr)
        if idx is None:
            return False
        line = lines.pop(idx)
        line.dirty = True
        lines.insert(0, line)
        return True

    def _install(self, lines: List[_Line], new: _Line) -> Optional[int]:
        """Plain LRU install; returns evicted dirty address if any."""
        evicted_dirty = None
        if len(lines) >= self.ways:
            victim = lines.pop()
            if victim.dirty:
                evicted_dirty = victim.addr
        lines.insert(0, new)
        return evicted_dirty

    def _install_dma(self, lines: List[_Line], new: _Line) -> Optional[int]:
        """DDIO install: victims come from the DMA way budget first."""
        dma_count = sum(1 for line in lines if line.is_dma)
        evicted_dirty = None
        if dma_count >= self.ddio_ways:
            # Evict the LRU DMA line (scan from the LRU end).
            for i in range(len(lines) - 1, -1, -1):
                if lines[i].is_dma:
                    victim = lines.pop(i)
                    if victim.dirty:
                        evicted_dirty = victim.addr
                    break
        elif len(lines) >= self.ways:
            victim = lines.pop()
            if victim.dirty:
                evicted_dirty = victim.addr
        lines.insert(0, new)
        return evicted_dirty

    def prewarm_ddio(self, base_line: int) -> None:
        """Fill every set's DDIO way budget with dirty DMA lines.

        The paper measures *steady-state* behaviour, where the DDIO
        ways have long been full of in-flight DMA data and every new
        DMA allocation evicts a dirty line. Reaching that state
        organically takes hundreds of microseconds of simulated DMA;
        prewarming jumps straight to it. ``base_line`` should point at
        an address range no workload uses.
        """
        addr = base_line
        for lines in self._sets:
            for _ in range(self.ddio_ways):
                lines.append(_Line(addr, dirty=True, is_dma=True))
                addr += 1
            del lines[self.ways:]

    @property
    def miss_ratio(self) -> float:
        """Misses / lookups since the last stats reset."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.misses / total

    def reset_stats(self) -> None:
        """Zero hit/miss counters (tag state is kept)."""
        self.hits = 0
        self.misses = 0
