"""Caching and Home Agent (CHA).

The CHA abstracts the LLC and memory from the rest of the system (§3).
For this model it is the admission point of the processor interconnect
and the place where the red regime's two backpressure effects play out
(§5.2):

* **WPQ backpressure** — writes that cannot enter a full WPQ backlog
  inside the CHA's *write stage* (``N_waiting`` in the analytical
  model, Table 2). This inflates the P2M-Write domain (which spans the
  MC) but not the C2M-Write domain (which ends at CHA admission).
  Reads are *not* affected: they flow through a separate read stage,
  matching the paper's observation that "reads can be processed
  concurrently at the CHA even when writes are blocked".
* **CHA admission backpressure** — when the write stage itself fills,
  requests back up in the shared FCFS *ingress* queue, where a blocked
  write head-of-line-blocks every later arrival, read or write, C2M or
  P2M. This is the equitable latency increase and bandwidth-share
  stabilization the paper sees at 5–6 C2M cores.

Pipeline::

    arrivals -> ingress (FCFS, HoL) -> read stage  -> RPQ
                                    -> write stage -> WPQ

This module is the *reference* implementation. With ``REPRO_UNCORE``
on (the default) the host rebinds the hot entry points
(``request_admission``, ``_pump_ingress``, the deliveries and the
queue-space callbacks) to the fused struct-of-arrays kernel in
:mod:`repro.uncore.kernel`, which shares this object's queues, pools
and counters and is float-identical by construction. Keep the two in
lockstep: any semantic change here must land in the kernel too (the
differential tests in ``tests/test_uncore_kernel.py`` will catch a
divergence).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.dram.controller import MemoryController
from repro.sim.engine import Simulator
from repro.sim.records import (
    Request,
    RequestKind,
    RequestSource,
    acquire_request,
    release_request,
)
from repro.telemetry.counters import CounterHub
from repro.uncore.llc import LastLevelCache


class CHA:
    """Admission control + LLC/DDIO service + MC routing."""

    def __init__(
        self,
        sim: Simulator,
        hub: CounterHub,
        mc: MemoryController,
        write_capacity: int = 96,
        read_capacity: int = 96,
        t_cha_to_mc: float = 15.0,
        t_llc_hit: float = 22.0,
        llc: Optional[LastLevelCache] = None,
        ddio_enabled: bool = False,
    ):
        self._sim = sim
        self._hub = hub
        self._mc = mc
        self.write_capacity = write_capacity
        self.read_capacity = read_capacity
        self.t_cha_to_mc = t_cha_to_mc
        self.t_llc_hit = t_llc_hit
        self.llc = llc
        self.ddio_enabled = ddio_enabled
        n_channels = len(mc.channels)
        # Prebound: the channel list and per-channel admission methods
        # are hit once per request; skip the mc attribute walk.
        self._channels = mc.channels
        self._ingress: Deque[Tuple[Request, float]] = deque()
        self._read_backlog: list[Deque[Request]] = [deque() for _ in range(n_channels)]
        self._write_backlog: list[Deque[Request]] = [deque() for _ in range(n_channels)]
        self.ingress_occ = hub.occupancy("cha.ingress")
        # Soft pools: the capacity is the *admission* threshold, not a
        # hard occupancy cap — DDIO eviction writebacks enter the write
        # stage without passing ingress, so occupancy may transiently
        # exceed it (and the backing counters stay uncapped).
        self.read_stage = hub.pool("cha.read_stage", read_capacity, soft=True)
        self.write_waiting = hub.pool(
            "cha.write_waiting", write_capacity, soft=True
        )
        self._inflight_reads = {
            RequestSource.C2M: hub.occupancy("cha.inflight_reads.c2m"),
            RequestSource.P2M: hub.occupancy("cha.inflight_reads.p2m"),
        }
        # Per-traffic-class stats, cached so the per-request hot path
        # skips the f-string build and hub registry lookup.
        self._admission_delay: dict = {}
        self._arrival_rates: dict = {}
        self._completion_rates: dict = {}
        self._read_latency: dict = {}
        self._write_latency: dict = {}
        #: set by UncoreKernel when REPRO_UNCORE rebinds the hot path
        self.kernel = None
        for channel in mc.channels:
            channel.on_rpq_space = self._on_rpq_space
            channel.on_wpq_space = self._on_wpq_space

    def _class_stats(self, traffic_class: str) -> tuple:
        """Bind (and cache) every per-class stat this CHA records."""
        hub = self._hub
        bundle = hub.traffic_class(traffic_class)
        self._admission_delay[traffic_class] = hub.latency(
            f"cha.admission_delay.{traffic_class}"
        )
        self._arrival_rates[traffic_class] = bundle.arrivals
        self._completion_rates[traffic_class] = bundle.completions
        self._read_latency[traffic_class] = hub.latency(
            f"cha_to_dram_read.{traffic_class}"
        )
        self._write_latency[traffic_class] = hub.latency(
            f"cha_to_mc_write.{traffic_class}"
        )

    # ------------------------------------------------------------------
    # Ingress
    # ------------------------------------------------------------------

    def request_admission(self, req: Request) -> None:
        """A request arrives at the CHA (from a core or the IIO)."""
        now = self._sim.now
        if not self._ingress:
            # Empty ingress and a free stage: admission is synchronous,
            # so skip the queue round-trip. The occupancy pulse (+n
            # then -n at the same instant) is kept so the counter's
            # integral and high-water mark stay identical to the
            # queued path.
            if req.kind is RequestKind.READ:
                room = self.read_stage.has_room(req.lines)
            else:
                room = self.write_waiting.has_room(req.lines)
            if room:
                occ_update = self.ingress_occ.update
                occ_update(now, req.lines)
                occ_update(now, -req.lines)
                self._admit(req, now)
                return
        self._ingress.append((req, now))
        self.ingress_occ.update(now, req.lines)
        self._pump_ingress()

    def _stage_has_room(self, req: Request) -> bool:
        if req.kind is RequestKind.READ:
            return self.read_stage.has_room(req.lines)
        return self.write_waiting.has_room(req.lines)

    def _pump_ingress(self) -> None:
        """Admit ingress heads while their type stage has room (FCFS:
        a blocked head blocks everyone behind it)."""
        while self._ingress:
            req, t_arrival = self._ingress[0]
            if not self._stage_has_room(req):
                return
            self._ingress.popleft()
            self.ingress_occ.update(self._sim.now, -req.lines)
            self._admit(req, t_arrival)

    def _admit(self, req: Request, t_arrival: float) -> None:
        now = self._sim.now
        req.t_cha_admit = now
        traffic_class = req.traffic_class
        delay_stat = self._admission_delay.get(traffic_class)
        if delay_stat is None:
            self._class_stats(traffic_class)
            delay_stat = self._admission_delay[traffic_class]
        delay_stat.record(now - t_arrival, req.lines)
        self._arrival_rates[traffic_class].increment(req.lines)
        if req.on_cha_admit is not None:
            req.on_cha_admit(req)
        if req.kind is RequestKind.READ:
            self._admit_read(req)
        else:
            self._admit_write(req)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def _admit_read(self, req: Request) -> None:
        now = self._sim.now
        if self.llc is not None:
            hit, evicted_dirty = self.llc.lookup_read(req.line_addr)
            if hit:
                self._sim.schedule(self.t_llc_hit, self._complete_llc_read, req)
                return
            if evicted_dirty is not None:
                self._spawn_writeback(evicted_dirty, req.traffic_class)
        lines = req.lines
        self.read_stage.acquire(now, lines)
        self._inflight_reads[req.source].update(now, lines)
        req.on_serviced = self._on_read_serviced
        channel = self._channels[req.channel_id]
        if channel.can_accept_read(lines):
            channel.reserve_read(lines)
            self._sim.schedule(self.t_cha_to_mc, self._deliver_read, req)
        else:
            self._read_backlog[req.channel_id].append(req)

    def _deliver_read(self, req: Request) -> None:
        # CreditPool.release, inlined (the read stage has no waiters
        # registered, but the drain check is kept for exactness).
        # Pinned to the canonical method by
        # tests/test_credit.py::TestInlinedFastPaths.
        lines = req.lines
        pool = self.read_stage
        pool.free_count += lines
        pool._occ_update(self._sim.now, -lines)
        if pool._waiters:
            pool._drain_waiters()
        self._channels[req.channel_id].enqueue_read(req)
        if self._ingress:
            self._pump_ingress()

    def _complete_llc_read(self, req: Request) -> None:
        """Serve a read from the LLC (no memory traversal)."""
        req.t_service = self._sim.now
        if req.on_complete is not None:
            req.on_complete(req)
        self._pump_ingress()

    def _on_read_serviced(self, req: Request) -> None:
        now = self._sim.now
        traffic_class = req.traffic_class
        self._inflight_reads[req.source].update(now, -req.lines)
        latency = (req.t_service - req.t_cha_admit) + self.t_cha_to_mc
        stat = self._read_latency.get(traffic_class)
        if stat is None:
            self._class_stats(traffic_class)
            stat = self._read_latency[traffic_class]
        stat.record(latency, req.lines)
        self._completion_rates[traffic_class].increment(req.lines)

    def _on_rpq_space(self, channel_id: int) -> None:
        backlog = self._read_backlog[channel_id]
        if not backlog:
            return
        channel = self._channels[channel_id]
        while backlog and channel.can_accept_read(backlog[0].lines):
            req = backlog.popleft()
            channel.reserve_read(req.lines)
            self._sim.schedule(self.t_cha_to_mc, self._deliver_read, req)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def _admit_write(self, req: Request) -> None:
        now = self._sim.now
        if (
            self.llc is not None
            and self.ddio_enabled
            and req.source is RequestSource.P2M
        ):
            # DDIO: the DMA write terminates at the LLC; the P2M-Write
            # credit is replenished here. A dirty eviction (the steady
            # state for buffers larger than the DDIO ways) becomes a
            # memory write carried by a fresh write-stage entry.
            outcome, evicted_dirty = self.llc.write_allocate_ddio(req.line_addr)
            self._sim.schedule(self.t_llc_hit, self._complete_ddio_write, req)
            if evicted_dirty is None:
                return
            req = self._make_writeback(evicted_dirty, req.traffic_class)
            # fall through: the eviction writeback heads to the WPQ.
        elif self.llc is not None and req.source is RequestSource.C2M:
            if self.llc.writeback_update(req.line_addr):
                # Absorbed by a resident line; written back on eviction.
                self._sim.schedule(0.0, self._complete_absorbed_write, req)
                return
        lines = req.lines
        self.write_waiting.acquire(now, lines)
        channel = self._channels[req.channel_id]
        if channel.can_accept_write(lines):
            channel.reserve_write(lines)
            self._sim.schedule(self.t_cha_to_mc, self._deliver_write, req)
        else:
            self._write_backlog[req.channel_id].append(req)

    def _deliver_write(self, req: Request) -> None:
        now = self._sim.now
        traffic_class = req.traffic_class
        lines = req.lines
        # CreditPool.release, inlined (hot: every memory write). Pinned
        # to the canonical method by
        # tests/test_credit.py::TestInlinedFastPaths.
        pool = self.write_waiting
        pool.free_count += lines
        pool._occ_update(now, -lines)
        if pool._waiters:
            pool._drain_waiters()
        latency = now - req.t_cha_admit
        stat = self._write_latency.get(traffic_class)
        if stat is None:
            self._class_stats(traffic_class)
            stat = self._write_latency[traffic_class]
        stat.record(latency, lines)
        self._channels[req.channel_id].enqueue_write(req)
        self._completion_rates[traffic_class].increment(lines)
        if self._ingress:
            self._pump_ingress()

    def _complete_ddio_write(self, req: Request) -> None:
        req.t_queue_admit = self._sim.now  # domain ends at the LLC
        if req.on_complete is not None:
            req.on_complete(req)
        # A DDIO write's lifecycle ends at the LLC; any eviction
        # writeback rides a separate request.
        release_request(req)

    def _complete_absorbed_write(self, req: Request) -> None:
        req.t_queue_admit = self._sim.now
        if req.on_complete is not None:
            req.on_complete(req)
        release_request(req)

    def _make_writeback(self, line_addr: int, traffic_class: str) -> Request:
        """Turn a dirty DDIO eviction into a memory write."""
        wb = acquire_request(
            RequestSource.P2M,
            RequestKind.WRITE,
            line_addr,
            traffic_class=traffic_class,
        )
        wb.t_alloc = self._sim.now
        wb.t_cha_admit = self._sim.now
        self._mc.assign(wb)
        return wb

    def _spawn_writeback(self, line_addr: int, traffic_class: str) -> None:
        """Dirty eviction caused by a read fill: re-enters via ingress
        so it competes for write-stage space like any other write."""
        wb = acquire_request(
            RequestSource.C2M,
            RequestKind.WRITE,
            line_addr,
            traffic_class=traffic_class,
        )
        wb.t_alloc = self._sim.now
        self._mc.assign(wb)
        self.request_admission(wb)

    def _on_wpq_space(self, channel_id: int) -> None:
        backlog = self._write_backlog[channel_id]
        if not backlog:
            return
        channel = self._channels[channel_id]
        moved = False
        while backlog and channel.can_accept_write(backlog[0].lines):
            req = backlog.popleft()
            channel.reserve_write(req.lines)
            self._sim.schedule(self.t_cha_to_mc, self._deliver_write, req)
            moved = True
        if moved:
            self._pump_ingress()

    # ------------------------------------------------------------------

    @property
    def write_backlog_len(self) -> int:
        """Writes waiting for WPQ space across channels."""
        return sum(len(q) for q in self._write_backlog)

    @property
    def read_backlog_len(self) -> int:
        """Reads waiting for RPQ space across channels."""
        return sum(len(q) for q in self._read_backlog)

    @property
    def admission_queue_len(self) -> int:
        """Requests waiting in the shared ingress (HoL queue)."""
        return len(self._ingress)

    @property
    def admission_queue_lines(self) -> int:
        """Cachelines waiting in the shared ingress (a burst-mode
        macro-request counts its full width)."""
        return sum(req.lines for req, _ in self._ingress)
