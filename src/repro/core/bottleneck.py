"""Bottleneck-domain analysis: which domain binds a datapath, and why.

Combines per-domain characteristics (credits, latency, occupancy) into
the paper's explanatory narrative: a domain throttles its datapath
when its credits are fully utilized *and* its latency has inflated;
a domain with spare credits masks latency inflation (§5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.datapath import Datapath
from repro.core.domain import Domain, DomainKind


@dataclass(frozen=True)
class BottleneckReport:
    """Outcome of analyzing one datapath under measured characteristics.

    Attributes:
        datapath: the analyzed datapath.
        bottleneck: the domain with the lowest throughput bound.
        bound: that domain's bound (bytes/ns).
        credit_limited: the bottleneck's credits are (nearly) all in
            use, so latency inflation converts to throughput loss.
        latency_inflated: the bottleneck's latency is meaningfully
            above its unloaded latency.
        explanation: one-sentence narrative in the paper's terms.
    """

    datapath: Datapath
    bottleneck: DomainKind
    bound: float
    credit_limited: bool
    latency_inflated: bool
    explanation: str


#: latency inflation below this ratio is considered noise
_INFLATION_THRESHOLD = 1.10


def analyze_bottleneck(
    datapath: Datapath,
    characteristics: Dict[DomainKind, Domain],
    demand: Optional[float] = None,
) -> BottleneckReport:
    """Identify and explain the bottleneck domain of a datapath.

    Args:
        datapath: domains the transfer traverses.
        characteristics: measured per-domain state.
        demand: offered load (bytes/ns) if known; lets the report say
            whether spare credits fully mask the inflation.
    """
    bottleneck_kind = min(
        datapath.domains, key=lambda k: characteristics[k].max_throughput
    )
    domain = characteristics[bottleneck_kind]
    bound = datapath.bound(characteristics)
    inflated = domain.latency_inflation >= _INFLATION_THRESHOLD
    credit_limited = domain.credits_saturated

    if credit_limited and inflated:
        explanation = (
            f"{bottleneck_kind.value}: credits fully utilized and domain "
            f"latency inflated {domain.latency_inflation:.2f}x -> throughput "
            f"degrades to <= {bound:.1f} GB/s"
        )
    elif inflated and demand is not None and bound >= demand:
        explanation = (
            f"{bottleneck_kind.value}: latency inflated "
            f"{domain.latency_inflation:.2f}x but spare credits "
            f"({domain.spare_credits():.0f}) mask it; demand "
            f"{demand:.1f} GB/s still met"
        )
    elif inflated:
        explanation = (
            f"{bottleneck_kind.value}: latency inflated "
            f"{domain.latency_inflation:.2f}x; bound {bound:.1f} GB/s"
        )
    else:
        explanation = (
            f"{bottleneck_kind.value}: unloaded; bound {bound:.1f} GB/s"
        )
    return BottleneckReport(
        datapath=datapath,
        bottleneck=bottleneck_kind,
        bound=bound,
        credit_limited=credit_limited,
        latency_inflated=inflated,
        explanation=explanation,
    )
