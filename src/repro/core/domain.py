"""Domains and their credit/latency/throughput algebra (§4.1).

The four bottleneck domains of Fig. 5, plus the DDIO slice the paper's
§2.1 analysis motivates (promoted to a measurable domain here):

========== ============== ============================ ================
Domain     Span           Credit pool                  Credit freed at
========== ============== ============================ ================
C2M-Read   LFB -> DRAM    LFB (10-12 / core)           data at core
C2M-Write  LFB -> CHA     LFB (10-12 / core)           CHA admission
P2M-Read   IIO -> DRAM    IIO read buffer (>164)       completion issue
P2M-Write  IIO -> MC      IIO write buffer (~92)       WPQ admission
LLC-DDIO   LLC DMA slice  DDIO ways (sets*ddio_ways)   line eviction
========== ============== ============================ ================

The LLC-DDIO domain only exists when the host runs with DDIO enabled
(``llc_mode="full"`` + ``ddio_enabled`` or ``REPRO_DDIO=1``): each
DMA-tagged line in the cache holds one credit from install (or
core-line conversion) until eviction, so C is the slice capacity in
cachelines, L the DMA-line residency time, and the ``T·L/(C·64)``
bound measures how hard DMA traffic thrashes the slice.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.sim.records import CACHELINE_BYTES


class DomainKind(enum.Enum):
    """The bottleneck domains of the host network (Fig. 5 + DDIO)."""

    C2M_READ = "c2m_read"
    C2M_WRITE = "c2m_write"
    P2M_READ = "p2m_read"
    P2M_WRITE = "p2m_write"
    LLC_DDIO = "llc.ddio"

    @property
    def includes_dram(self) -> bool:
        """Whether DRAM execution is inside the domain.

        Domains that include DRAM (reads) see queueing at the MC as
        domain-latency inflation; write domains end at the CHA (C2M)
        or the WPQ (P2M) and only inflate on backpressure (§5).
        """
        return self in (DomainKind.C2M_READ, DomainKind.P2M_READ)

    @property
    def includes_mc(self) -> bool:
        """Whether WPQ admission is inside the domain (P2M-Write is the
        asymmetric case the red regime turns on, §5.2). The LLC-DDIO
        domain lives entirely inside the cache: its credits turn over
        at line eviction, before any memory-controller queue."""
        return self not in (DomainKind.C2M_WRITE, DomainKind.LLC_DDIO)


def throughput_bound(credits: float, latency_ns: float) -> float:
    """The paper's bound ``T <= C * 64 / L`` in bytes/ns (== GB/s).

    Args:
        credits: domain credits available to the sender, in cachelines.
        latency_ns: average domain latency.
    """
    if credits < 0:
        raise ValueError("credits must be non-negative")
    if latency_ns <= 0:
        raise ValueError("latency must be positive")
    return credits * CACHELINE_BYTES / latency_ns


def credits_needed(target_bytes_per_ns: float, latency_ns: float) -> float:
    """Credits required to sustain a target throughput at a latency.

    Inverts the bound; the paper uses this to show the P2M-Write
    domain has spare credits (~65 needed for ~14 GB/s at ~300 ns
    against ~92 available, §5.1).
    """
    if target_bytes_per_ns < 0:
        raise ValueError("target must be non-negative")
    if latency_ns <= 0:
        raise ValueError("latency must be positive")
    return target_bytes_per_ns * latency_ns / CACHELINE_BYTES


@dataclass(frozen=True)
class Domain:
    """One credit-flow-controlled domain with measured characteristics.

    Attributes:
        kind: which of the four bottleneck domains this is.
        credits: credit-pool size in cachelines (per sender).
        unloaded_latency_ns: latency with no contention.
        loaded_latency_ns: measured latency under the workload of
            interest (defaults to the unloaded latency).
        credits_in_use: average credits held (occupancy); ``None`` if
            not measured.
        saturation_threshold: fraction of ``credits`` above which the
            sender counts as holding (nearly) all credits; the paper's
            analysis uses ~95% because occupancy averages hover just
            below C even at the bound.
    """

    kind: DomainKind
    credits: float
    unloaded_latency_ns: float
    loaded_latency_ns: Optional[float] = None
    credits_in_use: Optional[float] = None
    saturation_threshold: float = 0.95

    def __post_init__(self) -> None:
        if self.credits <= 0:
            raise ValueError("credits must be positive")
        if self.unloaded_latency_ns <= 0:
            raise ValueError("unloaded latency must be positive")
        if not 0.0 < self.saturation_threshold <= 1.0:
            raise ValueError("saturation threshold must be in (0, 1]")

    @classmethod
    def from_snapshot(
        cls,
        snapshot,
        unloaded_latency_ns: Optional[float] = None,
        saturation_threshold: float = 0.95,
    ) -> "Domain":
        """Build a measured Domain from a live ``DomainSnapshot``.

        ``snapshot`` is duck-typed (anything with ``kind``, ``credits``,
        ``credits_in_use`` and ``latency_ns``) so :mod:`repro.core`
        stays import-cycle-free of the simulator. The snapshot's
        measured latency becomes the *loaded* latency; pass the
        no-contention baseline as ``unloaded_latency_ns`` if known
        (defaults to the measured latency, i.e. inflation 1.0).
        """
        measured = snapshot.latency_ns
        if measured <= 0:
            raise ValueError(
                "snapshot has no measured latency "
                f"(domain {snapshot.kind!r} saw no completions)"
            )
        unloaded = unloaded_latency_ns if unloaded_latency_ns is not None else measured
        return cls(
            kind=DomainKind(snapshot.kind),
            credits=snapshot.credits,
            unloaded_latency_ns=unloaded,
            loaded_latency_ns=measured,
            credits_in_use=snapshot.credits_in_use,
            saturation_threshold=saturation_threshold,
        )

    @property
    def latency(self) -> float:
        """The effective (loaded if measured, else unloaded) latency."""
        if self.loaded_latency_ns is not None:
            return self.loaded_latency_ns
        return self.unloaded_latency_ns

    @property
    def latency_inflation(self) -> float:
        """Loaded / unloaded latency ratio."""
        return self.latency / self.unloaded_latency_ns

    @property
    def max_throughput(self) -> float:
        """T <= C * 64 / L under the current (loaded) latency."""
        return throughput_bound(self.credits, self.latency)

    @property
    def unloaded_throughput(self) -> float:
        """The bound at the unloaded latency."""
        return throughput_bound(self.credits, self.unloaded_latency_ns)

    @property
    def credits_saturated(self) -> bool:
        """True when the sender holds (nearly) all credits — the
        precondition for latency inflation to become throughput loss
        (§5.1: "any non-zero increase in domain latency will result in
        throughput degradation")."""
        if self.credits_in_use is None:
            return False
        return self.credits_in_use >= self.saturation_threshold * self.credits

    def spare_credits(self) -> Optional[float]:
        """Credits not in use, or None if occupancy was not measured."""
        if self.credits_in_use is None:
            return None
        return max(0.0, self.credits - self.credits_in_use)

    def tolerable_latency(self, demand_bytes_per_ns: float) -> float:
        """Largest domain latency at which ``demand`` is still met.

        The paper's spare-credit argument: a domain with demand below
        its bound tolerates inflation up to ``C*64/demand`` before any
        throughput degrades (§5.1).
        """
        if demand_bytes_per_ns <= 0:
            return float("inf")
        return self.credits * CACHELINE_BYTES / demand_bytes_per_ns
