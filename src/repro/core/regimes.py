"""Blue/red regime classification (§2.2).

* **Blue regime** — C2M throughput degrades while P2M throughput does
  not, even though memory bandwidth is far from saturated.
* **Red regime** — memory bandwidth saturates; both C2M and P2M
  degrade, with C2M antagonizing P2M (P2M's degradation exceeding or
  catching up to C2M's).

The classifier takes the measured degradation ratios (isolated /
colocated throughput, so 1.0 means unaffected) plus memory-bandwidth
utilization and reproduces the paper's quadrant shading of Fig. 3.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Regime(enum.Enum):
    """The contention regimes of §2.2 (plus neutral for no effect)."""

    NEUTRAL = "neutral"  # neither side meaningfully degraded
    BLUE = "blue"
    RED = "red"


#: degradation below this is treated as measurement noise
_DEGRADED = 1.10
#: memory-bandwidth utilization above this counts as saturated;
#: DDR efficiency under mixed read/write traffic tops out well below
#: the theoretical peak, so "saturated" is relative to that ceiling.
_SATURATED_UTIL = 0.75


@dataclass(frozen=True)
class RegimePoint:
    """One colocation data point.

    Attributes:
        c2m_degradation: isolated/colocated C2M throughput (>= 1).
        p2m_degradation: isolated/colocated P2M throughput (>= 1).
        mem_bw_utilization: achieved / theoretical memory bandwidth.
    """

    c2m_degradation: float
    p2m_degradation: float
    mem_bw_utilization: float

    def __post_init__(self) -> None:
        if self.c2m_degradation <= 0 or self.p2m_degradation <= 0:
            raise ValueError("degradation ratios must be positive")
        if not 0 <= self.mem_bw_utilization <= 1.5:
            raise ValueError("utilization out of plausible range")


def classify_regime(
    point: RegimePoint,
    degraded_threshold: float = _DEGRADED,
    saturated_util: float = _SATURATED_UTIL,
) -> Regime:
    """Classify a colocation point into the paper's regimes.

    Red requires P2M degradation (the defining symptom reported by the
    production studies [1, 42]); blue requires C2M degradation with
    P2M essentially unaffected. Points where neither app degrades are
    neutral (e.g. very low load).
    """
    c2m_degraded = point.c2m_degradation >= degraded_threshold
    p2m_degraded = point.p2m_degradation >= degraded_threshold
    if p2m_degraded and point.mem_bw_utilization >= saturated_util * 0.9:
        return Regime.RED
    if p2m_degraded and c2m_degraded:
        return Regime.RED
    if c2m_degraded:
        return Regime.BLUE
    return Regime.NEUTRAL
