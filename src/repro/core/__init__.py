"""The paper's primary contribution: domain-by-domain credit-based
flow control (§4).

The host network is decomposed into *domains* — sub-networks each
governed by an independent credit-based flow-control loop. A sender
consumes a credit per request and the credit is replenished when the
domain's receiver acknowledges it. Per-domain throughput is bounded by

    T <= C x 64 / L

with ``C`` the domain credits (cachelines), 64 the cacheline size and
``L`` the (load-dependent) domain latency. The end-to-end throughput
of a datapath is the minimum over its domains.
"""

from repro.core.domain import Domain, DomainKind, throughput_bound
from repro.core.datapath import (
    C2M_READ,
    C2M_READWRITE,
    C2M_WRITE,
    P2M_READ,
    P2M_WRITE,
    Datapath,
    datapath_for,
)
from repro.core.bottleneck import BottleneckReport, analyze_bottleneck
from repro.core.regimes import Regime, RegimePoint, classify_regime

__all__ = [
    "Domain",
    "DomainKind",
    "throughput_bound",
    "Datapath",
    "datapath_for",
    "C2M_READ",
    "C2M_WRITE",
    "C2M_READWRITE",
    "P2M_READ",
    "P2M_WRITE",
    "BottleneckReport",
    "analyze_bottleneck",
    "Regime",
    "RegimePoint",
    "classify_regime",
]
