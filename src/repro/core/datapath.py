"""Datapaths: which domains a transfer traverses (§4.1, Fig. 5).

Each data transfer, depending on its source (compute or peripheral)
and type (read or write), traverses a specific set of domains; its
end-to-end throughput is the minimum bound across them. A workload
like C2M-ReadWrite traverses both C2M domains in sequence, which is
why its LFB latency is the *sum* of the two domain latencies (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.core.domain import Domain, DomainKind
from repro.sim.records import RequestKind, RequestSource


@dataclass(frozen=True)
class Datapath:
    """An ordered traversal of domains for one transfer type.

    ``serial`` marks whether the sender's credit is held across all
    listed domains in sequence (C2M-ReadWrite: the LFB entry spans the
    read and the write handoff) rather than the domains operating
    independently.
    """

    name: str
    domains: Tuple[DomainKind, ...]
    serial: bool = False

    def bound(self, characteristics: Dict[DomainKind, Domain]) -> float:
        """End-to-end throughput bound given per-domain characteristics.

        For parallel (independent) domains this is the min of the
        per-domain bounds; for serial credit-sharing domains the
        latencies add under the shared credit pool.
        """
        missing = [k for k in self.domains if k not in characteristics]
        if missing:
            raise KeyError(f"missing domain characteristics: {missing}")
        if not self.serial:
            return min(characteristics[k].max_throughput for k in self.domains)
        credits = min(characteristics[k].credits for k in self.domains)
        total_latency = sum(characteristics[k].latency for k in self.domains)
        first = characteristics[self.domains[0]]
        shared = Domain(
            kind=first.kind,
            credits=credits,
            unloaded_latency_ns=total_latency,
        )
        return shared.max_throughput

    def total_latency(self, characteristics: Dict[DomainKind, Domain]) -> float:
        """Sum of the traversed domains' latencies."""
        return sum(characteristics[k].latency for k in self.domains)


#: The canonical datapaths of Fig. 5.
C2M_READ = Datapath("c2m-read", (DomainKind.C2M_READ,))
C2M_WRITE = Datapath("c2m-write", (DomainKind.C2M_WRITE,))
#: Stores: RFO read then writeback handoff under one LFB entry (§4.2).
C2M_READWRITE = Datapath(
    "c2m-readwrite", (DomainKind.C2M_READ, DomainKind.C2M_WRITE), serial=True
)
P2M_READ = Datapath("p2m-read", (DomainKind.P2M_READ,))
P2M_WRITE = Datapath("p2m-write", (DomainKind.P2M_WRITE,))


def datapath_for(
    source: RequestSource, kind: RequestKind, store_stream: bool = False
) -> Datapath:
    """Datapath for a transfer of the given source and memory-level type.

    ``store_stream`` selects the serial C2M-ReadWrite path for store
    workloads (each store is an RFO read plus a writeback).
    """
    if source is RequestSource.C2M:
        if store_stream:
            return C2M_READWRITE
        return C2M_READ if kind is RequestKind.READ else C2M_WRITE
    return P2M_READ if kind is RequestKind.READ else P2M_WRITE


def domains_of(paths: Sequence[Datapath]) -> Tuple[DomainKind, ...]:
    """Unique domains traversed by a set of datapaths, in first-seen order."""
    seen = []
    for path in paths:
        for kind in path.domains:
            if kind not in seen:
                seen.append(kind)
    return tuple(seen)
