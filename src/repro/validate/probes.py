"""Cross-layer invariant probes over a :class:`~repro.topology.host.Host`.

The :class:`Validator` is installed by the host when validation is on
(``REPRO_VALIDATE=1`` or ``Host(..., validate=True)``). It snapshots
credit-event counters at the start of the measurement window and, at
the end of the window, walks every layer:

* **engine** — clock monotone and finite, heap property intact,
  fast-path vs cancellable-path dispatch equivalence (a scripted
  self-test run once at install);
* **credit domains** — LFB and IIO pool occupancy within ``[0, C]``
  and *credit conservation*: credits freed equal credits acquired net
  of the occupancy drift across the window;
* **queues** — RPQ/WPQ occupancy within capacity, occupancy counters
  agreeing with the scheduler's own counts, per-bank FIFO contents
  reconciling with queue counts, CHA ingress/stage/backlog accounting;
* **telemetry** — Little's-law latency (``L = O / R``, §4.2) from
  occupancy counters agreeing with direct per-request timestamps
  within a tolerance, and the paper's throughput bound
  ``T <= C * 64 / L`` restated as ``R * L <= C``.

Structural identities are exact; statistical identities use
``REPRO_VALIDATE_TOL`` (default 0.25) and require ``MIN_SAMPLES``
latency samples, because requests in flight across the window reset
perturb short windows. All probes are read-only: a validated run
executes the identical event sequence and produces float-identical
results (only the wall-clock diagnostics and the check count differ).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.telemetry.littleslaw import littles_law_latency
from repro.validate.engine import dispatch_equivalence_selftest, verify_heap
from repro.validate.invariants import (
    MIN_SAMPLES,
    InvariantViolation,
    tolerance as default_tolerance,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (host imports us)
    from repro.topology.host import Host


class Validator:
    """Window-scoped invariant checker for one host."""

    def __init__(
        self,
        tolerance: Optional[float] = None,
        min_samples: int = MIN_SAMPLES,
    ):
        self.tolerance = default_tolerance() if tolerance is None else tolerance
        if self.tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self.min_samples = min_samples
        self.checks_passed = 0
        self._t0 = 0.0
        self._now = 0.0
        self._snapshot: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Lifecycle (called by Host)
    # ------------------------------------------------------------------

    def install(self, host: "Host") -> None:
        """One-time probe setup; runs the engine dispatch self-test."""
        dispatch_equivalence_selftest()
        self.checks_passed += 1

    def begin_window(self, host: "Host") -> None:
        """Snapshot credit-event counters at the window start."""
        self._t0 = self._now = host.sim.now
        snap = self._snapshot = {}
        for core in host.cores:
            lfb = core.lfb
            snap[f"core{core.core_id}.alloc"] = lfb.alloc_count
            snap[f"core{core.core_id}.free"] = lfb.free_count
            snap[f"core{core.core_id}.occ"] = lfb.in_use
        iio = host.iio
        snap["iio.write.alloc"] = iio.write_alloc_count
        snap["iio.write.release"] = iio.write_release_count
        snap["iio.write.occ"] = iio.write_occ.value
        snap["iio.read.alloc"] = iio.read_alloc_count
        snap["iio.read.release"] = iio.read_release_count
        snap["iio.read.occ"] = iio.read_occ.value

    def end_window(self, host: "Host") -> int:
        """Run every probe; returns the cumulative checks-passed count.

        Raises :class:`InvariantViolation` on the first failed
        identity, naming the component, the identity and the window.
        """
        self.check_engine(host)
        self.check_credit_pools(host)
        self.check_cha(host)
        self.check_channels(host)
        self.check_pcie(host)
        self.check_littles_law(host)
        return self.checks_passed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @property
    def _window(self) -> Tuple[float, float]:
        return (self._t0, self._now)

    def _require(
        self,
        ok: bool,
        component: str,
        identity: str,
        message: str,
        **details,
    ) -> None:
        if not ok:
            raise InvariantViolation(
                component, identity, message, window=self._window, details=details
            )
        self.checks_passed += 1

    # ------------------------------------------------------------------
    # Layer probes
    # ------------------------------------------------------------------

    def check_engine(self, host: "Host") -> None:
        """Clock sanity and heap health."""
        sim = host.sim
        self._now = sim.now
        self._require(
            math.isfinite(sim.now),
            "engine",
            "clock-finite",
            f"simulation clock is not finite: {sim.now}",
        )
        self._require(
            sim.now >= self._t0,
            "engine",
            "clock-monotonicity",
            f"clock moved backwards across the window: {sim.now} < {self._t0}",
        )
        self._require(
            sim.events_processed >= 0,
            "engine",
            "event-count",
            f"negative events_processed {sim.events_processed}",
        )
        verify_heap(sim)
        self.checks_passed += 1

    def _check_pool(
        self,
        component: str,
        value: int,
        capacity: int,
        allocs: int,
        frees: int,
        occ_start: float,
    ) -> None:
        self._require(
            0 <= value <= capacity,
            component,
            "occupancy-bounds",
            f"occupancy {value} outside [0, {capacity}]",
        )
        drift = value - occ_start
        self._require(
            allocs - frees == drift,
            component,
            "credit-conservation",
            "credits freed != credits acquired net of occupancy drift",
            acquired=allocs,
            freed=frees,
            occupancy_drift=drift,
        )

    def check_credit_pools(self, host: "Host") -> None:
        """LFB and IIO pools: bounds + per-window credit conservation."""
        self._now = host.sim.now
        snap = self._snapshot
        for core in host.cores:
            lfb = core.lfb
            key = f"core{core.core_id}"
            self._check_pool(
                f"{key}.lfb",
                lfb.in_use,
                lfb.size,
                lfb.alloc_count - int(snap.get(f"{key}.alloc", 0)),
                lfb.free_count - int(snap.get(f"{key}.free", 0)),
                snap.get(f"{key}.occ", 0),
            )
        iio = host.iio
        self._check_pool(
            "iio.write",
            iio.write_occ.value,
            iio.write_entries,
            iio.write_alloc_count - int(snap.get("iio.write.alloc", 0)),
            iio.write_release_count - int(snap.get("iio.write.release", 0)),
            snap.get("iio.write.occ", 0),
        )
        self._check_pool(
            "iio.read",
            iio.read_occ.value,
            iio.read_entries,
            iio.read_alloc_count - int(snap.get("iio.read.alloc", 0)),
            iio.read_release_count - int(snap.get("iio.read.release", 0)),
            snap.get("iio.read.occ", 0),
        )

    def check_cha(self, host: "Host") -> None:
        """CHA ingress / stage / backlog accounting."""
        self._now = host.sim.now
        cha = host.cha
        self._require(
            cha.ingress_occ.value == cha.admission_queue_lines,
            "cha.ingress",
            "occupancy-accounting",
            "ingress occupancy counter disagrees with the FCFS queue",
            counter=cha.ingress_occ.value,
            queue=cha.admission_queue_lines,
        )
        self._require(
            cha.read_stage.value >= 0,
            "cha.read_stage",
            "occupancy-bounds",
            f"negative read-stage occupancy {cha.read_stage.value}",
        )
        self._require(
            cha.write_waiting.value >= 0,
            "cha.write_stage",
            "occupancy-bounds",
            f"negative write-stage occupancy {cha.write_waiting.value}",
        )
        self._require(
            cha.read_stage.value >= cha.read_backlog_len,
            "cha.read_stage",
            "backlog-accounting",
            "more backlogged reads than read-stage entries",
            stage=cha.read_stage.value,
            backlog=cha.read_backlog_len,
        )
        self._require(
            cha.write_waiting.value >= cha.write_backlog_len,
            "cha.write_stage",
            "backlog-accounting",
            "more backlogged writes than write-stage entries",
            stage=cha.write_waiting.value,
            backlog=cha.write_backlog_len,
        )

    def check_channels(self, host: "Host") -> None:
        """Per-channel RPQ/WPQ capacity and bank-FIFO reconciliation."""
        self._now = host.sim.now
        for channel in host.mc.channels:
            name = f"mc.ch{channel.channel_id}"
            self._require(
                0 <= channel.rpq_count <= channel.rpq_size,
                f"{name}.rpq",
                "occupancy-bounds",
                f"RPQ count {channel.rpq_count} outside [0, {channel.rpq_size}]",
            )
            self._require(
                0 <= channel.wpq_count <= channel.wpq_size,
                f"{name}.wpq",
                "occupancy-bounds",
                f"WPQ count {channel.wpq_count} outside [0, {channel.wpq_size}]",
            )
            self._require(
                channel.rpq_reserved >= 0 and channel.wpq_reserved >= 0,
                name,
                "reservation-bounds",
                "negative in-transit reservation count",
                rpq_reserved=channel.rpq_reserved,
                wpq_reserved=channel.wpq_reserved,
            )
            self._require(
                channel.rpq_count + channel.rpq_reserved <= channel.rpq_size
                and channel.wpq_count + channel.wpq_reserved <= channel.wpq_size,
                name,
                "admission-capacity",
                "admitted + reserved exceeds queue capacity",
                rpq=(channel.rpq_count, channel.rpq_reserved, channel.rpq_size),
                wpq=(channel.wpq_count, channel.wpq_reserved, channel.wpq_size),
            )
            self._require(
                channel.rpq_occ.value == channel.rpq_count
                and channel.wpq_occ.value == channel.wpq_count,
                name,
                "occupancy-accounting",
                "occupancy counters disagree with scheduler counts",
                rpq=(channel.rpq_occ.value, channel.rpq_count),
                wpq=(channel.wpq_occ.value, channel.wpq_count),
            )
            bank_reads, bank_writes = channel.queued_in_banks()
            in_flight_reads = channel.rpq_count - bank_reads
            in_flight_writes = channel.wpq_count - bank_writes
            # At most one request has been popped for transmit but not
            # yet completed (the channel serializes transmissions); a
            # burst-mode macro-request accounts for up to ``burst``
            # lines in flight at once.
            max_in_flight = max(1, getattr(host, "burst", 1))
            self._require(
                in_flight_reads >= 0
                and in_flight_writes >= 0
                and in_flight_reads + in_flight_writes <= max_in_flight,
                name,
                "bank-fifo-accounting",
                "bank FIFO contents do not reconcile with queue counts",
                rpq=(channel.rpq_count, bank_reads),
                wpq=(channel.wpq_count, bank_writes),
            )

    def check_pcie(self, host: "Host") -> None:
        """PCIe link byte accounting and serialization cursors."""
        self._now = host.sim.now
        link = host.link
        self._require(
            link.bytes_upstream >= 0 and link.bytes_downstream >= 0,
            "pcie.link",
            "byte-accounting",
            "negative transferred-bytes counter",
            upstream=link.bytes_upstream,
            downstream=link.bytes_downstream,
        )
        self._require(
            math.isfinite(link.upstream_next_free())
            and math.isfinite(link.downstream_next_free()),
            "pcie.link",
            "serialization-cursor",
            "non-finite link serialization cursor",
        )

    # ------------------------------------------------------------------
    # Statistical identities (§4.2)
    # ------------------------------------------------------------------

    def _check_littles_law_pool(
        self,
        component: str,
        avg_occupancy: float,
        capacity: float,
        count: int,
        direct_latency: float,
        elapsed: float,
    ) -> None:
        """``L = O / R`` agreement plus the ``T <= C * 64 / L`` bound.

        ``count`` completions over ``elapsed`` define the rate R; the
        direct latency comes from per-request timestamps the real
        hardware cannot observe. The throughput bound is checked in
        its rate form ``R * L <= C`` (multiply both sides of
        ``T <= C * 64 / L`` by ``L / 64``).
        """
        if count < self.min_samples or elapsed <= 0 or direct_latency <= 0:
            return
        rate = count / elapsed
        estimate = littles_law_latency(avg_occupancy, rate)
        error = abs(estimate - direct_latency) / direct_latency
        self._require(
            error <= self.tolerance,
            component,
            "littles-law",
            "occupancy-derived latency disagrees with direct timestamps",
            littles_law_ns=round(estimate, 3),
            direct_ns=round(direct_latency, 3),
            relative_error=round(error, 4),
            tolerance=self.tolerance,
        )
        self._require(
            rate * direct_latency <= capacity * (1.0 + self.tolerance),
            component,
            "throughput-bound",
            "throughput exceeds the credit bound T <= C * 64 / L",
            implied_occupancy=round(rate * direct_latency, 3),
            capacity=capacity,
        )

    def check_littles_law(self, host: "Host") -> None:
        """Cross-check occupancy counters against direct timestamps."""
        now = host.sim.now
        self._now = now
        elapsed = now - self._t0
        hub = host.hub

        # LFB, per traffic class. The lfb.total stat covers loads and
        # RFO stores but not non-temporal stores (which bypass the
        # read path), so only check classes whose completion count
        # matches the stat's sample count — otherwise the occupancy
        # integral covers a larger population than the timestamps.
        by_class: Dict[str, Dict[str, float]] = {}
        for core in host.cores:
            tc = core.workload.traffic_class
            slot = by_class.setdefault(
                tc, {"occ": 0.0, "capacity": 0.0, "completions": 0}
            )
            slot["occ"] += core.lfb.average_occupancy(now)
            slot["capacity"] += core.lfb.size
            slot["completions"] += core.reads_completed + core.stores_completed
        for tc, slot in by_class.items():
            stat = hub._latencies.get(f"lfb.total.{tc}")
            if stat is None or stat.count != slot["completions"]:
                continue
            self._check_littles_law_pool(
                f"lfb.{tc}",
                slot["occ"],
                slot["capacity"],
                stat.count,
                stat.average,
                elapsed,
            )

        # IIO pools: every release records a domain latency, so the
        # populations match by construction; pool stats aggregate over
        # traffic classes.
        iio = host.iio
        for pool, occ, capacity, prefix in (
            ("iio.write", iio.write_occ, iio.write_entries, "domain.p2m_write."),
            ("iio.read", iio.read_occ, iio.read_entries, "domain.p2m_read."),
        ):
            total = 0.0
            count = 0
            for name, stat in hub._latencies.items():
                if name.startswith(prefix):
                    total += stat.total
                    count += stat.count
            if count == 0:
                continue
            self._check_littles_law_pool(
                pool,
                occ.average(now),
                capacity,
                count,
                total / count,
                elapsed,
            )
