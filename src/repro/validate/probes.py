"""Cross-layer invariant probes over a :class:`~repro.topology.host.Host`.

The :class:`Validator` is installed by the host when validation is on
(``REPRO_VALIDATE=1`` or ``Host(..., validate=True)``). It snapshots
credit-event counters at the start of the measurement window and, at
the end of the window, walks every layer:

* **engine** — clock monotone and finite, heap property intact,
  fast-path vs cancellable-path dispatch equivalence (a scripted
  self-test run once at install);
* **credit pools** — every pool registered with the host's
  :class:`~repro.sim.credit.DomainTracker` (per-core LFBs, IIO
  buffers, CHA stages, RPQ/WPQ) through one uniform probe: occupancy
  within ``[0, C]`` (soft pools: ``>= 0``), reservations non-negative
  and within capacity, and *credit conservation* — credits freed
  equal credits acquired net of the occupancy drift across the window;
* **queues** — per-bank FIFO contents reconciling with the RPQ/WPQ
  pools, CHA ingress/stage/backlog accounting;
* **telemetry** — Little's-law latency (``L = O / R``, §4.2) from
  occupancy integrals agreeing with each pool's credit-hold
  timestamps within a tolerance, and the paper's throughput bound
  ``T <= C * 64 / L`` checked per pool (rate form ``R * L <= C``)
  and per Fig. 5 domain snapshot (``T * L / (C * 64) <= 1``).

Structural identities are exact; statistical identities use
``REPRO_VALIDATE_TOL`` (default 0.25) and require ``MIN_SAMPLES``
latency samples, because requests in flight across the window reset
perturb short windows. All probes are read-only: a validated run
executes the identical event sequence and produces float-identical
results (only the wall-clock diagnostics and the check count differ).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.telemetry.littleslaw import littles_law_latency
from repro.validate.engine import dispatch_equivalence_selftest, verify_heap
from repro.validate.invariants import (
    MIN_SAMPLES,
    InvariantViolation,
    tolerance as default_tolerance,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (host imports us)
    from repro.topology.host import Host


class Validator:
    """Window-scoped invariant checker for one host."""

    def __init__(
        self,
        tolerance: Optional[float] = None,
        min_samples: int = MIN_SAMPLES,
    ):
        self.tolerance = default_tolerance() if tolerance is None else tolerance
        if self.tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self.min_samples = min_samples
        self.checks_passed = 0
        self._t0 = 0.0
        self._now = 0.0
        self._snapshot: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Lifecycle (called by Host)
    # ------------------------------------------------------------------

    def install(self, host: "Host") -> None:
        """One-time probe setup; runs the engine dispatch self-test."""
        dispatch_equivalence_selftest()
        self.checks_passed += 1

    def begin_window(self, host: "Host") -> None:
        """Snapshot credit-event counters at the window start.

        One uniform walk over every pool the host's DomainTracker
        knows (LFBs, IIO buffers, CHA stages, RPQ/WPQ).
        """
        self._t0 = self._now = host.sim.now
        snap = self._snapshot = {}
        for pool in host.domains.pools():
            snap[f"{pool.name}.alloc"] = pool.alloc_count
            snap[f"{pool.name}.free"] = pool.free_count
            snap[f"{pool.name}.occ"] = pool.occ.value

    def end_window(self, host: "Host") -> int:
        """Run every probe; returns the cumulative checks-passed count.

        Raises :class:`InvariantViolation` on the first failed
        identity, naming the component, the identity and the window.
        """
        self.check_engine(host)
        self.check_credit_pools(host)
        self.check_cha(host)
        self.check_llc(host)
        self.check_channels(host)
        self.check_pcie(host)
        self.check_littles_law(host)
        self.check_domains(host)
        return self.checks_passed

    def post_restore(self, host: "Host") -> int:
        """Structural walk over a checkpoint-restored host.

        Run automatically by ``Host.restore()`` under
        ``REPRO_VALIDATE=1``: heap/wheel structure (verify_heap), pool
        bounds and credit conservation, CHA/LLC (``verify_tags``) /
        channel (kernel ``verify_consistency``) / PCIe accounting. The
        statistical probes (Little's law, domain bounds) are skipped —
        the restore point is mid-window, where their rate identities
        are not yet meaningful. Returns the cumulative checks-passed
        count.
        """
        if not self._snapshot:
            # Restored mid-warmup: no measurement window is open, but
            # credit conservation still holds from t=0 (the counters
            # and occupancy have moved together since construction),
            # so the uniform pool walk applies with a zero snapshot.
            self._t0 = host.sim.now
        self.check_engine(host)
        self.check_credit_pools(host)
        self.check_cha(host)
        self.check_llc(host)
        self.check_channels(host)
        self.check_pcie(host)
        return self.checks_passed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @property
    def _window(self) -> Tuple[float, float]:
        return (self._t0, self._now)

    def _require(
        self,
        ok: bool,
        component: str,
        identity: str,
        message: str,
        **details,
    ) -> None:
        if not ok:
            raise InvariantViolation(
                component, identity, message, window=self._window, details=details
            )
        self.checks_passed += 1

    # ------------------------------------------------------------------
    # Layer probes
    # ------------------------------------------------------------------

    def check_engine(self, host: "Host") -> None:
        """Clock sanity and heap health."""
        sim = host.sim
        self._now = sim.now
        self._require(
            math.isfinite(sim.now),
            "engine",
            "clock-finite",
            f"simulation clock is not finite: {sim.now}",
        )
        self._require(
            sim.now >= self._t0,
            "engine",
            "clock-monotonicity",
            f"clock moved backwards across the window: {sim.now} < {self._t0}",
        )
        self._require(
            sim.events_processed >= 0,
            "engine",
            "event-count",
            f"negative events_processed {sim.events_processed}",
        )
        verify_heap(sim)
        self.checks_passed += 1

    def _check_pool(self, pool) -> None:
        """Bounds, reservation sanity and conservation for one pool."""
        name = pool.name
        value = pool.occ.value
        if pool.capacity is not None and not pool.soft:
            self._require(
                0 <= value <= pool.capacity,
                name,
                "occupancy-bounds",
                f"occupancy {value} outside [0, {pool.capacity}]",
            )
            self._require(
                value + pool.reserved <= pool.capacity,
                name,
                "admission-capacity",
                "admitted + reserved exceeds pool capacity",
                value=value,
                reserved=pool.reserved,
                capacity=pool.capacity,
            )
        else:
            # Soft pools (CHA stages): the capacity is an admission
            # threshold only — DDIO eviction writebacks legitimately
            # overshoot it — so only non-negativity is structural.
            self._require(
                value >= 0,
                name,
                "occupancy-bounds",
                f"negative occupancy {value}",
            )
        self._require(
            pool.reserved >= 0,
            name,
            "reservation-bounds",
            f"negative in-transit reservation count {pool.reserved}",
        )
        snap = self._snapshot
        allocs = pool.alloc_count - int(snap.get(f"{name}.alloc", 0))
        frees = pool.free_count - int(snap.get(f"{name}.free", 0))
        drift = value - snap.get(f"{name}.occ", 0)
        self._require(
            allocs - frees == drift,
            name,
            "credit-conservation",
            "credits freed != credits acquired net of occupancy drift",
            acquired=allocs,
            freed=frees,
            occupancy_drift=drift,
        )

    def check_credit_pools(self, host: "Host") -> None:
        """Every tracked pool: bounds + per-window credit conservation."""
        self._now = host.sim.now
        for pool in host.domains.pools():
            self._check_pool(pool)

    def check_cha(self, host: "Host") -> None:
        """CHA ingress / stage / backlog accounting."""
        self._now = host.sim.now
        cha = host.cha
        self._require(
            cha.ingress_occ.value == cha.admission_queue_lines,
            "cha.ingress",
            "occupancy-accounting",
            "ingress occupancy counter disagrees with the FCFS queue",
            counter=cha.ingress_occ.value,
            queue=cha.admission_queue_lines,
        )
        self._require(
            cha.read_stage.value >= cha.read_backlog_len,
            "cha.read_stage",
            "backlog-accounting",
            "more backlogged reads than read-stage entries",
            stage=cha.read_stage.value,
            backlog=cha.read_backlog_len,
        )
        self._require(
            cha.write_waiting.value >= cha.write_backlog_len,
            "cha.write_stage",
            "backlog-accounting",
            "more backlogged writes than write-stage entries",
            stage=cha.write_waiting.value,
            backlog=cha.write_backlog_len,
        )
        kernel = cha.kernel
        if kernel is not None:
            # SoA uncore kernel: incremental line counters, intern
            # tables and pool conservation must agree exactly with
            # direct walks of the shared queues.
            try:
                kernel.verify_consistency()
            except AssertionError as exc:
                raise InvariantViolation(
                    "cha.kernel",
                    "kernel-consistency",
                    str(exc),
                    window=self._window,
                ) from None
            self.checks_passed += 1

    def check_llc(self, host: "Host") -> None:
        """LLC tag-store structure + DDIO credit-occupancy identity.

        The tag walk (:meth:`~repro.uncore.llc.LastLevelCache
        .verify_tags`) proves every line sits in the set its address
        maps to, tags are unique per set and no set exceeds the
        associativity; when the llc.ddio domain is live, the credits
        held must equal the resident DMA-tagged lines exactly.
        """
        self._now = host.sim.now
        llc = host.llc
        if llc is None:
            return
        try:
            llc.verify_tags()
        except AssertionError as exc:
            raise InvariantViolation(
                "llc",
                "tag-store",
                str(exc),
                window=self._window,
            ) from None
        self.checks_passed += 1
        pool = getattr(host, "llc_ddio_pool", None)
        if pool is not None:
            dma = llc.dma_lines()
            self._require(
                pool.occ.value == dma,
                "llc.ddio",
                "occupancy-accounting",
                "llc.ddio credits held disagree with resident DMA lines",
                credits_held=pool.occ.value,
                dma_lines=dma,
            )

    def check_channels(self, host: "Host") -> None:
        """Per-channel bank-FIFO reconciliation with the queue pools.

        The RPQ/WPQ pools themselves (bounds, reservations,
        conservation) are covered by the uniform pool walk of
        :meth:`check_credit_pools`.
        """
        self._now = host.sim.now
        for channel in host.mc.channels:
            name = f"mc.ch{channel.channel_id}"
            bank_reads, bank_writes = channel.queued_in_banks()
            # queued_in_banks() is an incrementally maintained cache;
            # recount the FIFOs directly so a drifted counter cannot
            # hide behind its own bookkeeping.
            walk = channel.walk_queued_lines()
            self._require(
                walk == (bank_reads, bank_writes),
                name,
                "queue-count-cache",
                "cached queued-lines counters drifted from the bank FIFOs",
                cached=(bank_reads, bank_writes),
                walk=walk,
            )
            kernel = channel.kernel
            if kernel is not None:
                # SoA kernel: head caches and open-row match sets must
                # agree exactly with the FIFO contents and bank arrays.
                try:
                    kernel.verify_consistency()
                except AssertionError as exc:
                    raise InvariantViolation(
                        name,
                        "kernel-consistency",
                        str(exc),
                        window=self._window,
                    ) from None
                self.checks_passed += 1
            in_flight_reads = channel.rpq_count - bank_reads
            in_flight_writes = channel.wpq_count - bank_writes
            # At most one request has been popped for transmit but not
            # yet completed (the channel serializes transmissions); a
            # burst-mode macro-request accounts for up to ``burst``
            # lines in flight at once.
            max_in_flight = max(1, getattr(host, "burst", 1))
            self._require(
                in_flight_reads >= 0
                and in_flight_writes >= 0
                and in_flight_reads + in_flight_writes <= max_in_flight,
                name,
                "bank-fifo-accounting",
                "bank FIFO contents do not reconcile with queue counts",
                rpq=(channel.rpq_count, bank_reads),
                wpq=(channel.wpq_count, bank_writes),
            )

    def check_pcie(self, host: "Host") -> None:
        """PCIe link byte accounting and serialization cursors."""
        self._now = host.sim.now
        link = host.link
        self._require(
            link.bytes_upstream >= 0 and link.bytes_downstream >= 0,
            "pcie.link",
            "byte-accounting",
            "negative transferred-bytes counter",
            upstream=link.bytes_upstream,
            downstream=link.bytes_downstream,
        )
        self._require(
            math.isfinite(link.upstream_next_free())
            and math.isfinite(link.downstream_next_free()),
            "pcie.link",
            "serialization-cursor",
            "non-finite link serialization cursor",
        )

    # ------------------------------------------------------------------
    # Statistical identities (§4.2)
    # ------------------------------------------------------------------

    def _check_littles_law_pool(
        self,
        component: str,
        avg_occupancy: float,
        capacity: float,
        count: int,
        direct_latency: float,
        elapsed: float,
    ) -> None:
        """``L = O / R`` agreement plus the ``T <= C * 64 / L`` bound.

        ``count`` completions over ``elapsed`` define the rate R; the
        direct latency comes from per-request timestamps the real
        hardware cannot observe. The throughput bound is checked in
        its rate form ``R * L <= C`` (multiply both sides of
        ``T <= C * 64 / L`` by ``L / 64``).
        """
        if count < self.min_samples or elapsed <= 0 or direct_latency <= 0:
            return
        rate = count / elapsed
        estimate = littles_law_latency(avg_occupancy, rate)
        error = abs(estimate - direct_latency) / direct_latency
        self._require(
            error <= self.tolerance,
            component,
            "littles-law",
            "occupancy-derived latency disagrees with direct timestamps",
            littles_law_ns=round(estimate, 3),
            direct_ns=round(direct_latency, 3),
            relative_error=round(error, 4),
            tolerance=self.tolerance,
        )
        self._require(
            rate * direct_latency <= capacity * (1.0 + self.tolerance),
            component,
            "throughput-bound",
            "throughput exceeds the credit bound T <= C * 64 / L",
            implied_occupancy=round(rate * direct_latency, 3),
            capacity=capacity,
        )

    def check_littles_law(self, host: "Host") -> None:
        """Cross-check occupancy integrals against credit-hold times.

        Every pool accumulates its own hold-time stats (``L``) via
        ``release_held``, covering exactly the population that fed the
        occupancy integral — loads, RFO stores *and* non-temporal
        stores for the LFB; every DMA direction for the IIO — so the
        two sides of ``L = O / R`` are matched by construction.
        """
        now = host.sim.now
        self._now = now
        elapsed = now - self._t0

        # LFBs aggregated per traffic class (the granularity the
        # paper's uncore counters report at).
        by_class: Dict[str, Dict[str, float]] = {}
        for core in host.cores:
            tc = core.workload.traffic_class
            slot = by_class.setdefault(
                tc, {"occ": 0.0, "capacity": 0.0, "total": 0.0, "count": 0}
            )
            slot["occ"] += core.lfb.average_occupancy(now)
            slot["capacity"] += core.lfb.size
            slot["total"] += core.lfb.latency.total
            slot["count"] += core.lfb.latency.count
        for tc, slot in by_class.items():
            if slot["count"] == 0:
                continue
            self._check_littles_law_pool(
                f"lfb.{tc}",
                slot["occ"],
                slot["capacity"],
                int(slot["count"]),
                slot["total"] / slot["count"],
                elapsed,
            )

        # IIO pools: hold-time stats aggregate over traffic classes.
        iio = host.iio
        for pool in (iio.write_pool, iio.read_pool):
            stat = pool.latency
            if stat.count == 0:
                continue
            self._check_littles_law_pool(
                pool.name,
                pool.average(now),
                pool.capacity,
                stat.count,
                stat.average,
                elapsed,
            )

        # The DDIO slice: hold times are DMA-line residencies,
        # recorded by the LLC at each eviction (release_held). Unlike
        # the other pools (hold times of hundreds of ns), a line's
        # residency can approach the window length — and Little's law
        # over a window only holds when elapsed >> L (the occupancy
        # integral is otherwise dominated by lines installed before
        # the window). Only check once the slice demonstrably turned
        # over several times within the window.
        pool = getattr(host, "llc_ddio_pool", None)
        if (
            pool is not None
            and pool.latency.count > 0
            and pool.latency.average * 4.0 <= elapsed
        ):
            self._check_littles_law_pool(
                pool.name,
                pool.average(now),
                pool.capacity,
                pool.latency.count,
                pool.latency.average,
                elapsed,
            )

    def check_domains(self, host: "Host") -> None:
        """The paper's bound on each live Fig. 5 domain snapshot.

        Every :class:`~repro.sim.credit.DomainSnapshot` must satisfy
        ``T <= C * 64 / L`` — stated as the bound utilization
        ``T * L / (C * 64) <= 1`` — within tolerance, whenever the
        domain measured enough completions for L to be stable.
        """
        now = host.sim.now
        self._now = now
        elapsed = now - self._t0
        if elapsed <= 0:
            return
        for kind in host.domains.kinds:
            snapshot = host.domains.snapshot(kind, now, elapsed)
            if (
                snapshot.completions < self.min_samples
                or snapshot.latency_ns <= 0
                or snapshot.credits <= 0
            ):
                continue
            self._require(
                snapshot.bound_utilization <= 1.0 + self.tolerance,
                f"domain.{snapshot.kind}",
                "throughput-bound",
                "domain throughput exceeds the credit bound T <= C * 64 / L",
                utilization=round(snapshot.bound_utilization, 4),
                throughput_bytes_per_ns=round(snapshot.throughput_bytes_per_ns, 4),
                bound_bytes_per_ns=round(snapshot.bound_bytes_per_ns, 4),
                credits=snapshot.credits,
                latency_ns=round(snapshot.latency_ns, 3),
            )
