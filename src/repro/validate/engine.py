"""Engine-level probes: a checking simulator and a dispatch self-test.

:class:`ValidatingSimulator` is a drop-in :class:`~repro.sim.engine.Simulator`
whose dispatch loop verifies, per event, that

* the clock is monotone (a bucket's instant never precedes ``now``);
* every bucket entry is well-formed — an ``(fn, args)`` pair for the
  fast path, an :class:`~repro.sim.engine.Event` for the cancellable
  path (its ``time`` agreeing with the bucket's instant), or a chain
  payload for a ``schedule_many`` train with its cursor in range;

and whose :meth:`verify_heap` checks the heap ordering property over
the pending instants, the heap/bucket synchronisation (every pending
instant appears in the heap exactly once and owns a non-empty bucket)
and the live-pending counter (O(n), so it runs at window boundaries,
not per event). Dispatch order, ``events_processed`` and the clock
trajectory are bit-identical to the base class: validation must never
change what it validates.

:func:`dispatch_equivalence_selftest` replays one scripted workload
through the fast path, the cancellable path and the bulk
(``schedule_many``) path and demands identical execution order — the
bucket representations are an optimization, not a semantic fork.
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.sim.engine import Event, Simulator, _Chain
from repro.validate.invariants import InvariantViolation


def _check_shape(entry) -> None:
    """Raise unless ``entry`` is a well-formed bucket entry."""
    cls = entry.__class__
    if cls is tuple:
        if (
            len(entry) != 2
            or not callable(entry[0])
            or not isinstance(entry[1], tuple)
        ):
            raise InvariantViolation(
                "engine",
                "heap-entry-shape",
                f"malformed fast-path entry {entry!r}",
            )
    elif cls is _Chain:
        if not 0 <= entry.idx <= len(entry.argslist):
            raise InvariantViolation(
                "engine",
                "heap-entry-shape",
                "chain cursor out of range",
                details={
                    "idx": entry.idx,
                    "members": len(entry.argslist),
                },
            )
    elif cls is not Event:
        raise InvariantViolation(
            "engine",
            "heap-entry-shape",
            f"bucket entry of unrecognised shape: {entry!r}",
        )


class ValidatingSimulator(Simulator):
    """Simulator with per-event invariant checks (REPRO_VALIDATE=1)."""

    __slots__ = ()

    def _check_entry(self, time: float, entry) -> None:
        _check_shape(entry)
        if entry.__class__ is Event and entry.time != time:
            raise InvariantViolation(
                "engine",
                "heap-entry-shape",
                "Event wrapper disagrees with its bucket instant",
                details={"bucket": time, "event": entry.time},
            )

    def _check_instant(self, time: float) -> None:
        if time < self.now:
            raise InvariantViolation(
                "engine",
                "clock-monotonicity",
                f"event at t={time} surfaced after now={self.now}",
            )

    def _pop_bucket(self, time: float):
        bucket = self._buckets.pop(time, None)
        if bucket is None:
            raise InvariantViolation(
                "engine",
                "heap-bucket-sync",
                f"pending instant t={time} has no bucket",
            )
        return bucket

    def verify_heap(self) -> int:
        """Check the pending set's structure (see :func:`verify_heap`)."""
        return verify_heap(self)

    # The dispatch cores mirror Simulator._drain / _drain_limited
    # exactly — same coalescing, same counters — plus the per-entry
    # checks.

    def _drain(self, t_end: float) -> int:
        heap = self._heap
        pop = heappop
        processed = self._events_processed
        start = processed
        while heap and heap[0] < t_end:
            time = pop(heap)
            self._check_instant(time)
            self.now = time
            bucket = self._pop_bucket(time)
            if bucket.__class__ is not list:
                bucket = (bucket,)
            for entry in bucket:
                self._check_entry(time, entry)
                cls = entry.__class__
                if cls is tuple:
                    processed += 1
                    entry[0](*entry[1])
                elif cls is Event:
                    if entry.cancelled:
                        self._cancelled -= 1
                        continue
                    entry._sim = None
                    processed += 1
                    entry.fn(*entry.args)
                else:
                    chain_fn = entry.fn
                    argslist = entry.argslist
                    i = entry.idx
                    n = len(argslist)
                    while i < n:
                        args = argslist[i]
                        i += 1
                        processed += 1
                        chain_fn(*args)
                    entry.idx = n
        self._events_processed = processed
        return processed - start

    def _drain_limited(self, t_end: float, limit: int) -> int:
        heap = self._heap
        buckets = self._buckets
        processed = self._events_processed
        start = processed
        limit += processed
        while heap and heap[0] < t_end and processed < limit:
            time = heappop(heap)
            self._check_instant(time)
            self.now = time
            bucket = self._pop_bucket(time)
            if bucket.__class__ is not list:
                bucket = [bucket]
            i = 0
            n_entries = len(bucket)
            while i < n_entries:
                if processed >= limit:
                    break
                entry = bucket[i]
                self._check_entry(time, entry)
                cls = entry.__class__
                if cls is tuple:
                    i += 1
                    processed += 1
                    entry[0](*entry[1])
                elif cls is Event:
                    i += 1
                    if entry.cancelled:
                        self._cancelled -= 1
                        continue
                    entry._sim = None
                    processed += 1
                    entry.fn(*entry.args)
                else:
                    chain_fn = entry.fn
                    argslist = entry.argslist
                    j = entry.idx
                    n = len(argslist)
                    while j < n and processed < limit:
                        args = argslist[j]
                        j += 1
                        processed += 1
                        chain_fn(*args)
                    entry.idx = j
                    if j < n:
                        break
                    i += 1
            if i < n_entries:
                rest = bucket[i:]
                tail = buckets.get(time)
                if tail is None:
                    heappush(heap, time)
                elif tail.__class__ is list:
                    rest.extend(tail)
                else:
                    rest.append(tail)
                buckets[time] = rest
                break
        self._events_processed = processed
        return processed - start


def verify_heap(sim: Simulator) -> int:
    """Check the pending set's structure over every scheduled entry.

    Works on any :class:`Simulator` (not only the validating
    subclass). Verifies

    * the heap ordering property over the pending instants (a
      violation would mean events could fire out of timestamp order);
    * heap/bucket synchronisation: each pending instant appears in the
      heap exactly once and owns a non-empty, well-formed bucket;
    * the live-pending counter against a bucket walk — a disagreement
      would mean a cancellation was double-counted or lost.

    Returns the number of scheduled events verified (including
    cancelled residue and undispatched chain members). O(n) over the
    pending set, so call it at window boundaries.
    """
    heap = sim._heap
    buckets = sim._buckets
    n = len(heap)
    for parent in range(n):
        time = heap[parent]
        for child in (2 * parent + 1, 2 * parent + 2):
            if child < n and heap[child] < time:
                raise InvariantViolation(
                    "engine",
                    "heap-order",
                    f"heap property violated at index {parent}",
                    details={"parent": time, "child": heap[child]},
                )
    # A WheelSimulator splits the instant index: near-future instants
    # live in wheel slots (each a mini-heap), far-future ones in the
    # overflow heap checked above. Check the wheel-specific placement
    # invariants here; the index/bucket synchronisation below uses the
    # engines' canonical pending_instants() view of both halves.
    wheel = getattr(sim, "_wheel", None)
    if wheel is not None:
        n_slots = sim._n_slots
        inv = sim._inv_width
        cursor = sim._cursor
        in_wheel = 0
        for pos, slot in enumerate(wheel):
            m = len(slot)
            for parent in range(m):
                time = slot[parent]
                for child in (2 * parent + 1, 2 * parent + 2):
                    if child < m and slot[child] < time:
                        raise InvariantViolation(
                            "engine",
                            "wheel-slot-order",
                            f"slot {pos} heap property violated at {parent}",
                            details={"parent": time, "child": slot[child]},
                        )
                idx = int(time * inv)
                if idx < cursor:
                    # Behind-cursor instants are clamped into the
                    # cursor slot at filing time (see
                    # WheelSimulator._file_instant) so they surface
                    # before every later logical slot; anywhere else
                    # they would dispatch out of order.
                    if pos != cursor % n_slots:
                        raise InvariantViolation(
                            "engine",
                            "wheel-slot-membership",
                            f"behind-cursor instant t={time} not in the"
                            " cursor slot",
                            details={"slot": pos, "idx": idx, "cursor": cursor},
                        )
                elif idx % n_slots != pos or idx >= cursor + n_slots:
                    raise InvariantViolation(
                        "engine",
                        "wheel-slot-membership",
                        f"instant t={time} filed in the wrong slot",
                        details={"slot": pos, "idx": idx, "cursor": cursor},
                    )
            in_wheel += m
        if in_wheel != sim._n_wheel:
            raise InvariantViolation(
                "engine",
                "wheel-count",
                "wheel instant counter disagrees with a slot walk",
                details={"counter": sim._n_wheel, "walk": in_wheel},
            )
        for time in heap:
            if int(time * inv) < cursor:
                raise InvariantViolation(
                    "engine",
                    "wheel-overflow-order",
                    f"overflow instant t={time} is behind the cursor",
                    details={"cursor": cursor},
                )
    instants = sim.pending_instants()
    n = len(instants)
    if n != len(buckets) or len(set(instants)) != n or set(instants) != set(buckets):
        raise InvariantViolation(
            "engine",
            "heap-bucket-sync",
            "pending instants in the index disagree with the buckets",
            details={"index": n, "buckets": len(buckets)},
        )
    for time, bucket in buckets.items():
        if bucket.__class__ is list and not bucket:
            raise InvariantViolation(
                "engine",
                "heap-bucket-sync",
                f"pending instant t={time} owns an empty bucket",
            )
    total = 0
    live = 0
    for time, entry in sim.pending_entries():
        _check_shape(entry)
        cls = entry.__class__
        if cls is Event:
            total += 1
            if entry.time != time:
                raise InvariantViolation(
                    "engine",
                    "heap-entry-shape",
                    "Event wrapper disagrees with its bucket instant",
                    details={"bucket": time, "event": entry.time},
                )
            if not entry.cancelled:
                live += 1
        elif cls is _Chain:
            members = len(entry.argslist) - entry.idx
            total += members
            live += members
        else:
            total += 1
            live += 1
    if live != sim.pending_live:
        raise InvariantViolation(
            "engine",
            "live-pending",
            "live-pending counter disagrees with a bucket walk",
            details={"counter": sim.pending_live, "walk": live},
        )
    return total


#: scripted delays for the dispatch self-test: repeats, zero gaps and
#: out-of-order submission exercise the (time, submission) total order.
_SELFTEST_DELAYS = (5.0, 1.0, 1.0, 3.0, 0.0, 9.0, 3.0, 1.0, 7.0, 0.0, 2.0, 5.0)


def dispatch_equivalence_selftest() -> None:
    """Fast-path, cancellable-path and bulk dispatch must agree.

    Runs the same scripted workload through ``schedule``, through
    ``schedule_cancellable`` (with one cancelled straggler) and
    through ``schedule_many`` (members grouped by delay) and raises
    :class:`InvariantViolation` if execution order or the
    processed-event count diverge. Cheap (a few dozen events); the
    validator runs it once per host.
    """
    fast = Simulator()
    fast_order: list = []
    for i, delay in enumerate(_SELFTEST_DELAYS):
        fast.schedule(delay, fast_order.append, i)
    fast.run_until(100.0)

    slow = Simulator()
    slow_order: list = []
    for i, delay in enumerate(_SELFTEST_DELAYS):
        slow.schedule_cancellable(delay, slow_order.append, i)
    straggler = slow.schedule_cancellable(4.0, slow_order.append, "cancelled")
    straggler.cancel()
    slow.run_until(100.0)

    if fast_order != slow_order:
        raise InvariantViolation(
            "engine",
            "dispatch-equivalence",
            "fast-path and cancellable-path execution orders diverge",
            details={"fast": fast_order, "cancellable": slow_order},
        )
    if fast.events_processed != slow.events_processed:
        raise InvariantViolation(
            "engine",
            "dispatch-equivalence",
            "processed-event counts diverge between dispatch paths",
            details={
                "fast": fast.events_processed,
                "cancellable": slow.events_processed,
            },
        )

    # Bulk path: same instants, one schedule_many train per delay
    # value. Equivalent per-member schedule() calls would interleave
    # trains by submission order, so submit in that order too.
    bulk = Simulator()
    bulk_order: list = []
    for delay in sorted(set(_SELFTEST_DELAYS)):
        members = [
            (i,) for i, d in enumerate(_SELFTEST_DELAYS) if d == delay
        ]
        bulk.schedule_many(delay, bulk_order.append, members)
    bulk.run_until(100.0)
    if sorted(bulk_order) != sorted(fast_order) or len(bulk_order) != len(
        fast_order
    ):
        raise InvariantViolation(
            "engine",
            "dispatch-equivalence",
            "bulk-path dispatch lost or duplicated members",
            details={"fast": fast_order, "bulk": bulk_order},
        )
    by_time: dict = {}
    for i, delay in enumerate(_SELFTEST_DELAYS):
        by_time.setdefault(delay, []).append(i)
    expected = [i for delay in sorted(by_time) for i in by_time[delay]]
    if bulk_order != expected:
        raise InvariantViolation(
            "engine",
            "dispatch-equivalence",
            "bulk-path execution order diverges from per-member order",
            details={"expected": expected, "bulk": bulk_order},
        )
