"""Engine-level probes: a checking simulator and a dispatch self-test.

:class:`ValidatingSimulator` is a drop-in :class:`~repro.sim.engine.Simulator`
whose dispatch loops verify, per event, that

* the clock is monotone (an event's timestamp never precedes ``now``);
* every heap entry is well-formed — a ``(time, seq, fn, args)`` tuple
  for the fast path or ``(time, seq, None, event)`` for the
  cancellable path, with the wrapper's ``time``/``seq`` agreeing with
  its heap key;

and whose :meth:`verify_heap` checks the binary-heap ordering property
of the whole pending set (O(n), so it runs at window boundaries, not
per event). Dispatch order, ``events_processed`` and the clock
trajectory are bit-identical to the base class: validation must never
change what it validates.

:func:`dispatch_equivalence_selftest` replays one scripted workload
through the fast path and the cancellable path and demands identical
execution order — the two heap representations are an optimization,
not a semantic fork.
"""

from __future__ import annotations

from heapq import heappop

from repro.sim.engine import Event, Simulator
from repro.validate.invariants import InvariantViolation


class ValidatingSimulator(Simulator):
    """Simulator with per-event invariant checks (REPRO_VALIDATE=1)."""

    def _check_entry(self, entry) -> None:
        if not isinstance(entry, tuple) or len(entry) != 4:
            raise InvariantViolation(
                "engine",
                "heap-entry-shape",
                f"malformed heap entry {entry!r}",
            )
        time, seq, fn, payload = entry
        if time < self.now:
            raise InvariantViolation(
                "engine",
                "clock-monotonicity",
                f"event at t={time} surfaced after now={self.now}",
                details={"seq": seq},
            )
        if fn is None:
            if not isinstance(payload, Event):
                raise InvariantViolation(
                    "engine",
                    "heap-entry-shape",
                    f"None-callback entry without Event payload: {payload!r}",
                )
            if payload.time != time or payload.seq != seq:
                raise InvariantViolation(
                    "engine",
                    "heap-entry-shape",
                    "Event wrapper disagrees with its heap key",
                    details={
                        "key": (time, seq),
                        "event": (payload.time, payload.seq),
                    },
                )
        elif not callable(fn):
            raise InvariantViolation(
                "engine",
                "heap-entry-shape",
                f"non-callable fast-path callback {fn!r}",
            )

    def verify_heap(self) -> int:
        """Check the pending set's heap property (see :func:`verify_heap`)."""
        return verify_heap(self)

    # The loops mirror Simulator.run_until / Simulator.run exactly —
    # same coalescing, same counters — plus the per-entry checks.

    def run_until(self, t_end: float) -> None:
        if not t_end >= self.now:
            raise ValueError(
                f"cannot run backwards (t_end={t_end}, now={self.now})"
            )
        heap = self._heap
        pop = heappop
        processed = self._events_processed
        while heap:
            time = heap[0][0]
            if time >= t_end:
                break
            self._check_entry(heap[0])
            self.now = time
            while heap and heap[0][0] == time:
                entry = pop(heap)
                self._check_entry(entry)
                fn = entry[2]
                if fn is None:
                    event = entry[3]
                    if event.cancelled:
                        continue
                    processed += 1
                    event.fn(*event.args)
                else:
                    processed += 1
                    fn(*entry[3])
        self._events_processed = processed
        self.now = t_end

    def run(self, max_events: int = 100_000_000) -> None:
        heap = self._heap
        pop = heappop
        executed = 0
        while heap and executed < max_events:
            entry = pop(heap)
            self._check_entry(entry)
            fn = entry[2]
            if fn is None:
                event = entry[3]
                if event.cancelled:
                    continue
                self.now = entry[0]
                self._events_processed += 1
                executed += 1
                event.fn(*event.args)
            else:
                self.now = entry[0]
                self._events_processed += 1
                executed += 1
                fn(*entry[3])
        if executed >= max_events:
            while heap and heap[0][2] is None and heap[0][3].cancelled:
                pop(heap)
            if heap:
                raise RuntimeError(f"simulation exceeded {max_events} events")


def verify_heap(sim: Simulator) -> int:
    """Check the heap ordering property over every pending entry.

    Works on any :class:`Simulator` (not only the validating
    subclass). Returns the number of entries verified; raises
    :class:`InvariantViolation` on a violated parent/child order,
    which would mean events could fire out of timestamp order.
    O(n) over the pending set, so call it at window boundaries.
    """
    heap = sim._heap
    n = len(heap)
    for parent in range(n):
        key = heap[parent][:2]
        for child in (2 * parent + 1, 2 * parent + 2):
            if child < n and heap[child][:2] < key:
                raise InvariantViolation(
                    "engine",
                    "heap-order",
                    f"heap property violated at index {parent}",
                    details={
                        "parent": heap[parent][:2],
                        "child": heap[child][:2],
                    },
                )
    return n


#: scripted delays for the dispatch self-test: repeats, zero gaps and
#: out-of-order submission exercise the (time, seq) total order.
_SELFTEST_DELAYS = (5.0, 1.0, 1.0, 3.0, 0.0, 9.0, 3.0, 1.0, 7.0, 0.0, 2.0, 5.0)


def dispatch_equivalence_selftest() -> None:
    """Fast-path and cancellable-path dispatch must be order-identical.

    Runs the same scripted workload through ``schedule`` and through
    ``schedule_cancellable`` (with one cancelled straggler in the
    latter) and raises :class:`InvariantViolation` if execution order
    or the processed-event count diverge. Cheap (a few dozen events);
    the validator runs it once per host.
    """
    fast = Simulator()
    fast_order: list = []
    for i, delay in enumerate(_SELFTEST_DELAYS):
        fast.schedule(delay, fast_order.append, i)
    fast.run_until(100.0)

    slow = Simulator()
    slow_order: list = []
    for i, delay in enumerate(_SELFTEST_DELAYS):
        slow.schedule_cancellable(delay, slow_order.append, i)
    straggler = slow.schedule_cancellable(4.0, slow_order.append, "cancelled")
    straggler.cancel()
    slow.run_until(100.0)

    if fast_order != slow_order:
        raise InvariantViolation(
            "engine",
            "dispatch-equivalence",
            "fast-path and cancellable-path execution orders diverge",
            details={"fast": fast_order, "cancellable": slow_order},
        )
    if fast.events_processed != slow.events_processed:
        raise InvariantViolation(
            "engine",
            "dispatch-equivalence",
            "processed-event counts diverge between dispatch paths",
            details={
                "fast": fast.events_processed,
                "cancellable": slow.events_processed,
            },
        )
