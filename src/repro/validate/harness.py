"""Differential harness: execution mode must never change results.

A run is a pure function of (config, builders, seed, windows); the
executor — serial in-process, process-pool parallel, served from the
run cache, or instrumented by the validator — is an implementation
detail. :func:`differential_point` executes one colocation data point
through all four modes and :func:`assert_results_identical` demands
float-identical :class:`~repro.topology.host.RunResult`\\ s, excluding
only the wall-clock diagnostics (``sim_wall_s``, ``events_per_sec``)
and the validator's own check count, which describe the execution
rather than the simulated system.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from dataclasses import fields
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: RunResult fields describing the execution, not the simulated system.
DIAGNOSTIC_FIELDS = frozenset({"sim_wall_s", "events_per_sec", "invariant_checks"})


def result_payload(result: Any) -> Dict[str, Any]:
    """A RunResult's comparable content (diagnostics stripped)."""
    return {
        f.name: getattr(result, f.name)
        for f in fields(result)
        if f.name not in DIAGNOSTIC_FIELDS
    }


def assert_results_identical(a: Any, b: Any, context: str = "") -> None:
    """Demand two RunResults agree float-for-float.

    Raises ``AssertionError`` naming every differing field; the
    comparison is exact (no tolerance) because determinism is the
    contract, not an approximation.
    """
    pa, pb = result_payload(a), result_payload(b)
    diffs = [name for name in pa if pa[name] != pb[name]]
    if diffs:
        where = f" ({context})" if context else ""
        lines = [f"RunResults diverge{where} in: {', '.join(diffs)}"]
        for name in diffs[:5]:
            lines.append(f"  {name}: {pa[name]!r} != {pb[name]!r}")
        raise AssertionError("\n".join(lines))


def differential_point(
    experiment: Any,
    n_cores: int,
    warmup: float,
    measure: float,
    jobs: int = 2,
) -> Dict[str, List[Any]]:
    """Run one colocation point serial / parallel / cached / validated.

    ``experiment`` is a :class:`~repro.experiments.runner.ColocationExperiment`;
    the four sweeps must be float-identical. Returns the per-mode
    results keyed ``serial`` / ``parallel`` / ``cached`` /
    ``validated`` after asserting pairwise agreement against the
    serial baseline.
    """
    modes: Dict[str, List[Any]] = {}
    serial = experiment.sweep([n_cores], warmup, measure, jobs=1)
    modes["serial"] = serial
    modes["parallel"] = experiment.sweep([n_cores], warmup, measure, jobs=jobs)
    # The parallel sweep populated the run cache (unless REPRO_CACHE=off);
    # this sweep replays from it.
    modes["cached"] = experiment.sweep([n_cores], warmup, measure, jobs=1)
    validated = _with_validate(experiment)
    modes["validated"] = validated.sweep([n_cores], warmup, measure, jobs=1)

    baseline = modes["serial"][0]
    for mode in ("parallel", "cached", "validated"):
        point = modes[mode][0]
        for attr in ("c2m_isolated_run", "p2m_isolated_run", "colocated"):
            assert_results_identical(
                getattr(baseline, attr),
                getattr(point, attr),
                context=f"serial vs {mode}: {attr}",
            )
    if modes["validated"][0].colocated.invariant_checks <= 0:
        raise AssertionError(
            "validated differential run reported no invariant checks"
        )
    return modes


@contextlib.contextmanager
def _environment(**overrides: Optional[str]) -> Iterator[None]:
    """Temporarily set/unset environment variables (None removes)."""
    saved = {name: os.environ.get(name) for name in overrides}
    try:
        for name, value in overrides.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def chaos_differential_point(
    experiment: Any,
    n_cores: int,
    warmup: float,
    measure: float,
    jobs: int = 2,
    chaos: str = "kill=0.3,exc=1,seed=11",
    retries: int = 3,
    task_timeout: float = 0.0,
) -> Tuple[List[Any], List[Any], List[Any]]:
    """Fault-injected runs must still produce float-identical results.

    Runs one colocation point fault-free, then again under
    deterministic ``REPRO_CHAOS`` injection with retries enabled —
    each against its own throwaway cache directory so every fault
    actually fires instead of being absorbed by a warm cache — and
    demands the two sweeps agree float-for-float. Returns
    ``(baseline_points, chaotic_points, recovered_failures)``; the
    default spec injects a transient exception into *every* task
    (``exc=1``), so the recovered-failure list is never empty.
    """
    from repro.experiments.supervisor import stats

    with tempfile.TemporaryDirectory() as baseline_dir:
        with _environment(REPRO_CHAOS=None, REPRO_CACHE_DIR=baseline_dir,
                          REPRO_CACHE="on"):
            baseline = experiment.sweep([n_cores], warmup, measure, jobs=1)
    n_recovered = len(stats.recovered_failures)
    with tempfile.TemporaryDirectory() as chaotic_dir:
        with _environment(
            REPRO_CHAOS=chaos,
            REPRO_CACHE_DIR=chaotic_dir,
            REPRO_CACHE="on",
            REPRO_RETRIES=str(retries),
            REPRO_TASK_TIMEOUT=str(task_timeout) if task_timeout else None,
            REPRO_BACKOFF="0.01",
        ):
            chaotic = experiment.sweep([n_cores], warmup, measure, jobs=jobs)
    recovered = stats.recovered_failures[n_recovered:]
    for base_point, chaos_point in zip(baseline, chaotic):
        for attr in ("c2m_isolated_run", "p2m_isolated_run", "colocated"):
            assert_results_identical(
                getattr(base_point, attr),
                getattr(chaos_point, attr),
                context=f"fault-free vs chaotic: {attr}",
            )
    if not recovered:
        raise AssertionError(
            "chaotic differential run recovered no injected faults "
            f"(spec {chaos!r} never fired)"
        )
    return baseline, chaotic, recovered


def _with_validate(experiment: Any) -> Any:
    """Clone a ColocationExperiment with validation forced on."""
    from repro.experiments.runner import ColocationExperiment

    return ColocationExperiment(
        experiment.config,
        experiment.build_c2m,
        experiment.build_p2m,
        c2m_metric=experiment.c2m_metric,
        p2m_metric=experiment.p2m_metric,
        seed=experiment.seed,
        validate=True,
    )
