"""Differential harness: execution mode must never change results.

A run is a pure function of (config, builders, seed, windows); the
executor — serial in-process, process-pool parallel, served from the
run cache, or instrumented by the validator — is an implementation
detail. :func:`differential_point` executes one colocation data point
through all four modes and :func:`assert_results_identical` demands
float-identical :class:`~repro.topology.host.RunResult`\\ s, excluding
only the wall-clock diagnostics (``sim_wall_s``, ``events_per_sec``)
and the validator's own check count, which describe the execution
rather than the simulated system.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Any, Dict, List, Optional

#: RunResult fields describing the execution, not the simulated system.
DIAGNOSTIC_FIELDS = frozenset({"sim_wall_s", "events_per_sec", "invariant_checks"})


def result_payload(result: Any) -> Dict[str, Any]:
    """A RunResult's comparable content (diagnostics stripped)."""
    return {
        f.name: getattr(result, f.name)
        for f in fields(result)
        if f.name not in DIAGNOSTIC_FIELDS
    }


def assert_results_identical(a: Any, b: Any, context: str = "") -> None:
    """Demand two RunResults agree float-for-float.

    Raises ``AssertionError`` naming every differing field; the
    comparison is exact (no tolerance) because determinism is the
    contract, not an approximation.
    """
    pa, pb = result_payload(a), result_payload(b)
    diffs = [name for name in pa if pa[name] != pb[name]]
    if diffs:
        where = f" ({context})" if context else ""
        lines = [f"RunResults diverge{where} in: {', '.join(diffs)}"]
        for name in diffs[:5]:
            lines.append(f"  {name}: {pa[name]!r} != {pb[name]!r}")
        raise AssertionError("\n".join(lines))


def differential_point(
    experiment: Any,
    n_cores: int,
    warmup: float,
    measure: float,
    jobs: int = 2,
) -> Dict[str, List[Any]]:
    """Run one colocation point serial / parallel / cached / validated.

    ``experiment`` is a :class:`~repro.experiments.runner.ColocationExperiment`;
    the four sweeps must be float-identical. Returns the per-mode
    results keyed ``serial`` / ``parallel`` / ``cached`` /
    ``validated`` after asserting pairwise agreement against the
    serial baseline.
    """
    modes: Dict[str, List[Any]] = {}
    serial = experiment.sweep([n_cores], warmup, measure, jobs=1)
    modes["serial"] = serial
    modes["parallel"] = experiment.sweep([n_cores], warmup, measure, jobs=jobs)
    # The parallel sweep populated the run cache (unless REPRO_CACHE=off);
    # this sweep replays from it.
    modes["cached"] = experiment.sweep([n_cores], warmup, measure, jobs=1)
    validated = _with_validate(experiment)
    modes["validated"] = validated.sweep([n_cores], warmup, measure, jobs=1)

    baseline = modes["serial"][0]
    for mode in ("parallel", "cached", "validated"):
        point = modes[mode][0]
        for attr in ("c2m_isolated_run", "p2m_isolated_run", "colocated"):
            assert_results_identical(
                getattr(baseline, attr),
                getattr(point, attr),
                context=f"serial vs {mode}: {attr}",
            )
    if modes["validated"][0].colocated.invariant_checks <= 0:
        raise AssertionError(
            "validated differential run reported no invariant checks"
        )
    return modes


def _with_validate(experiment: Any) -> Any:
    """Clone a ColocationExperiment with validation forced on."""
    from repro.experiments.runner import ColocationExperiment

    return ColocationExperiment(
        experiment.config,
        experiment.build_c2m,
        experiment.build_p2m,
        c2m_metric=experiment.c2m_metric,
        p2m_metric=experiment.p2m_metric,
        seed=experiment.seed,
        validate=True,
    )
