"""Differential harness: execution mode must never change results.

A run is a pure function of (config, builders, seed, windows); the
executor — serial in-process, process-pool parallel, served from the
run cache, or instrumented by the validator — is an implementation
detail. :func:`differential_point` executes one colocation data point
through all four modes and :func:`assert_results_identical` demands
float-identical :class:`~repro.topology.host.RunResult`\\ s, excluding
only the wall-clock diagnostics (``sim_wall_s``, ``events_per_sec``)
and the validator's own check count, which describe the execution
rather than the simulated system.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import tempfile
from dataclasses import fields
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: RunResult fields describing the execution, not the simulated system.
DIAGNOSTIC_FIELDS = frozenset({"sim_wall_s", "events_per_sec", "invariant_checks"})

#: payload fields that cannot be fingerprinted bit-exactly as JSON
#: (``config`` is a nested dataclass; it is part of the run's identity,
#: not of its measurements).
UNFINGERPRINTED_FIELDS = frozenset({"config"})


def result_payload(result: Any) -> Dict[str, Any]:
    """A RunResult's comparable content (diagnostics stripped)."""
    return {
        f.name: getattr(result, f.name)
        for f in fields(result)
        if f.name not in DIAGNOSTIC_FIELDS
    }


def assert_results_identical(a: Any, b: Any, context: str = "") -> None:
    """Demand two RunResults agree float-for-float.

    Raises ``AssertionError`` naming every differing field; the
    comparison is exact (no tolerance) because determinism is the
    contract, not an approximation.
    """
    pa, pb = result_payload(a), result_payload(b)
    diffs = [name for name in pa if pa[name] != pb[name]]
    if diffs:
        where = f" ({context})" if context else ""
        lines = [f"RunResults diverge{where} in: {', '.join(diffs)}"]
        for name in diffs[:5]:
            lines.append(f"  {name}: {pa[name]!r} != {pb[name]!r}")
        raise AssertionError("\n".join(lines))


def differential_point(
    experiment: Any,
    n_cores: int,
    warmup: float,
    measure: float,
    jobs: int = 2,
) -> Dict[str, List[Any]]:
    """Run one colocation point serial / parallel / cached / validated.

    ``experiment`` is a :class:`~repro.experiments.runner.ColocationExperiment`;
    the four sweeps must be float-identical. Returns the per-mode
    results keyed ``serial`` / ``parallel`` / ``cached`` /
    ``validated`` after asserting pairwise agreement against the
    serial baseline.
    """
    modes: Dict[str, List[Any]] = {}
    serial = experiment.sweep([n_cores], warmup, measure, jobs=1)
    modes["serial"] = serial
    modes["parallel"] = experiment.sweep([n_cores], warmup, measure, jobs=jobs)
    # The parallel sweep populated the run cache (unless REPRO_CACHE=off);
    # this sweep replays from it.
    modes["cached"] = experiment.sweep([n_cores], warmup, measure, jobs=1)
    validated = _with_validate(experiment)
    modes["validated"] = validated.sweep([n_cores], warmup, measure, jobs=1)

    baseline = modes["serial"][0]
    for mode in ("parallel", "cached", "validated"):
        point = modes[mode][0]
        for attr in ("c2m_isolated_run", "p2m_isolated_run", "colocated"):
            assert_results_identical(
                getattr(baseline, attr),
                getattr(point, attr),
                context=f"serial vs {mode}: {attr}",
            )
    if modes["validated"][0].colocated.invariant_checks <= 0:
        raise AssertionError(
            "validated differential run reported no invariant checks"
        )
    return modes


# ----------------------------------------------------------------------
# Cross-commit fingerprints
#
# The differential harness above proves execution *mode* never changes
# results within one build of the simulator. Fingerprints extend the
# contract across commits: a refactor that must not change simulated
# behaviour (e.g. moving every credit loop onto the shared CreditPool
# runtime) captures a baseline before the change and asserts the
# refactored tree reproduces it bit-for-bit. Floats are encoded with
# ``float.hex`` so JSON round-trips are exact.
# ----------------------------------------------------------------------


def _encode_exact(value: Any) -> Any:
    """JSON-safe encoding that keeps floats bit-exact (``float.hex``)."""
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return {"__float__": value.hex()}
    if isinstance(value, dict):
        return {str(k): _encode_exact(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_encode_exact(v) for v in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        # e.g. DomainSnapshot: fingerprint its field values so future
        # baselines lock the credit-runtime measurements too.
        return _encode_exact(dataclasses.asdict(value))
    raise TypeError(f"cannot fingerprint value of type {type(value).__name__}: {value!r}")


def _decode_exact(value: Any) -> Any:
    """Inverse of :func:`_encode_exact`."""
    if isinstance(value, dict):
        if set(value) == {"__float__"}:
            return float.fromhex(value["__float__"])
        return {k: _decode_exact(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_exact(v) for v in value]
    return value


def result_fingerprint(result: Any) -> Dict[str, Any]:
    """Bit-exact, JSON-serializable fingerprint of a RunResult.

    Covers every comparable payload field (diagnostics and ``config``
    excluded) with floats hex-encoded, so a stored fingerprint detects
    *any* behavioural drift — throughput, latencies, counters — across
    commits, not just across execution modes.
    """
    payload = result_payload(result)
    return {
        name: _encode_exact(value)
        for name, value in payload.items()
        if name not in UNFINGERPRINTED_FIELDS
    }


def assert_matches_fingerprint(
    result: Any, baseline: Dict[str, Any], context: str = ""
) -> None:
    """Demand ``result`` reproduces a stored fingerprint exactly.

    Only fields recorded in the baseline are compared, so adding *new*
    RunResult fields (e.g. ``domain_snapshots``) does not invalidate a
    baseline captured before they existed — existing measurements still
    must not move.
    """
    current = result_fingerprint(result)
    diffs = []
    for name, expected in baseline.items():
        if name not in current:
            diffs.append(f"  {name}: missing from current result")
            continue
        if current[name] != expected:
            diffs.append(
                f"  {name}: {_decode_exact(current[name])!r} "
                f"!= baseline {_decode_exact(expected)!r}"
            )
    if diffs:
        where = f" ({context})" if context else ""
        raise AssertionError(
            "\n".join([f"RunResult diverges from stored fingerprint{where}:"]
                      + diffs[:8])
        )


#: reduced fig03 slice used for the cross-commit fingerprint: two
#: quadrants (1 = blue regime, 3 = the blue-to-red transition the
#: paper's §5.2 analysis rests on), small windows. Small enough for
#: tier-1, rich enough to cover all four credit domains.
FIG03_FINGERPRINT_SLICE = (
    (1, (1, 2)),
    (3, (2,)),
)
FIG03_FINGERPRINT_WINDOWS = (3_000.0, 9_000.0)


def fig03_fingerprint_points() -> Dict[str, Any]:
    """Run the reduced fig03 slice; returns ``{label: RunResult}``.

    Uses :meth:`ColocationExperiment.point` directly (no process pool,
    no run cache) so the fingerprint reflects the simulator alone.
    """
    from repro.experiments.quadrants import QUADRANTS, quadrant_experiment

    warmup, measure = FIG03_FINGERPRINT_WINDOWS
    results: Dict[str, Any] = {}
    for quadrant, core_counts in FIG03_FINGERPRINT_SLICE:
        experiment = quadrant_experiment(QUADRANTS[quadrant])
        for n in core_counts:
            point = experiment.point(n, warmup, measure)
            results[f"q{quadrant}.n{n}.c2m_isolated"] = point.c2m_isolated_run
            results[f"q{quadrant}.n{n}.p2m_isolated"] = point.p2m_isolated_run
            results[f"q{quadrant}.n{n}.colocated"] = point.colocated
    return results


def fig03_fingerprint() -> Dict[str, Dict[str, Any]]:
    """Fingerprints for the reduced fig03 slice, keyed by point label."""
    return {
        label: result_fingerprint(result)
        for label, result in fig03_fingerprint_points().items()
    }


#: DDIO smoke slice: one quadrant-1 point (P2M-write heavy — the blue
#: regime DDIO matters for) re-run with ``REPRO_DDIO=1``, locking the
#: fifth-domain (``llc.ddio``) measurements across commits the same way
#: the fig03 baseline locks the four Fig. 5 domains.
DDIO_SMOKE_SLICE = (1, (1,))
DDIO_SMOKE_WINDOWS = FIG03_FINGERPRINT_WINDOWS


def ddio_smoke_fingerprint_points() -> Dict[str, Any]:
    """Run the DDIO smoke slice under ``REPRO_DDIO=1``.

    Returns ``{label: RunResult}``. Only the P2M-involved runs are
    fingerprinted — the C2M-isolated run has no DMA traffic, so DDIO
    leaves it untouched (and the fig03 baseline already covers it).
    """
    from repro.experiments.quadrants import QUADRANTS, quadrant_experiment

    warmup, measure = DDIO_SMOKE_WINDOWS
    quadrant, core_counts = DDIO_SMOKE_SLICE
    results: Dict[str, Any] = {}
    with _environment(REPRO_DDIO="1"):
        experiment = quadrant_experiment(QUADRANTS[quadrant])
        for n in core_counts:
            point = experiment.point(n, warmup, measure)
            results[f"ddio.q{quadrant}.n{n}.p2m_isolated"] = point.p2m_isolated_run
            results[f"ddio.q{quadrant}.n{n}.colocated"] = point.colocated
    return results


def ddio_smoke_fingerprint() -> Dict[str, Dict[str, Any]]:
    """Fingerprints for the DDIO smoke slice, keyed by point label."""
    return {
        label: result_fingerprint(result)
        for label, result in ddio_smoke_fingerprint_points().items()
    }


def assert_ddio_smoke_matches(path: str) -> int:
    """Re-run the DDIO smoke slice against its stored baseline."""
    baseline = load_fingerprint(path)
    current = ddio_smoke_fingerprint_points()
    missing = sorted(set(baseline) - set(current))
    if missing:
        raise AssertionError(f"ddio baseline has unknown points: {missing}")
    for label, expected in baseline.items():
        assert_matches_fingerprint(current[label], expected, context=label)
    return len(baseline)


#: cluster smoke slice: a 2-host rack, one ``ib_write_bw`` flow from
#: host 1 into host 0 (which also runs a write-heavy STREAM core),
#: small edge queue, fig03-sized windows. Locks the whole coupling
#: stack — engine injection, counter namespacing, fabric queues, PFC
#: wiring, per-flow goodput attribution — bit-for-bit across commits.
CLUSTER_SMOKE_WINDOWS = FIG03_FINGERPRINT_WINDOWS
CLUSTER_SMOKE_QUEUE_LINES = 512


def cluster_smoke_run() -> Any:
    """Build and run the canonical 2-host RDMA smoke cluster."""
    from repro.net.rdma import add_rdma_write_flow
    from repro.topology.cluster import Cluster
    from repro.topology.presets import cascade_lake

    warmup, measure = CLUSTER_SMOKE_WINDOWS
    cluster = Cluster(
        cascade_lake(),
        n_hosts=2,
        queue_capacity_lines=CLUSTER_SMOKE_QUEUE_LINES,
    )
    cluster.hosts[0].add_stream_cores(
        1, store_fraction=1.0, traffic_class="mem"
    )
    add_rdma_write_flow(cluster, src=1, dst=0)
    return cluster.run(warmup, measure)


def cluster_smoke_fingerprint() -> Dict[str, Dict[str, Any]]:
    """Bit-exact fingerprint of the cluster smoke point.

    Both hosts' RunResults are fingerprinted like fig03 points; the
    fabric entry locks the switch-queue measurements (per-port counts,
    pause fractions) and the per-flow goodput attribution.
    """
    result = cluster_smoke_run()
    return {
        "cluster.h0": result_fingerprint(result.host(0)),
        "cluster.h1": result_fingerprint(result.host(1)),
        "cluster.fabric": {
            "ports": _encode_exact(result.fabric.ports),
            "lines_forwarded": result.fabric.lines_forwarded,
            "lines_marked": result.fabric.lines_marked,
            "lines_dropped": result.fabric.lines_dropped,
            "flow_goodput": _encode_exact(list(result.flow_goodput)),
            "elapsed_ns": _encode_exact(result.elapsed_ns),
        },
    }


def assert_cluster_smoke_matches(path: str) -> int:
    """Re-run the cluster smoke point against its stored baseline.

    Returns the number of labels compared. Like
    :func:`assert_matches_fingerprint`, only baseline-recorded fields
    are compared, so adding new measurements does not invalidate an
    existing baseline — existing ones still must not move.
    """
    baseline = load_fingerprint(path)
    current = cluster_smoke_fingerprint()
    missing = sorted(set(baseline) - set(current))
    if missing:
        raise AssertionError(f"cluster baseline has unknown points: {missing}")
    for label, expected in baseline.items():
        got = current[label]
        diffs = [name for name in expected if got.get(name) != expected[name]]
        if diffs:
            raise AssertionError(
                f"cluster smoke fingerprint diverges at {label}: "
                f"{', '.join(sorted(diffs))}"
            )
    return len(baseline)


def load_fingerprint(path: str) -> Dict[str, Dict[str, Any]]:
    """Load a stored fingerprint file written by ``tools/fig03_check.py``."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def assert_fig03_matches(path: str) -> int:
    """Re-run the fig03 slice and compare against the stored baseline.

    Returns the number of points compared; raises ``AssertionError``
    on the first divergence.
    """
    baseline = load_fingerprint(path)
    current = fig03_fingerprint_points()
    missing = sorted(set(baseline) - set(current))
    if missing:
        raise AssertionError(f"fingerprint baseline has unknown points: {missing}")
    for label, expected in baseline.items():
        assert_matches_fingerprint(current[label], expected, context=label)
    return len(baseline)


@contextlib.contextmanager
def _environment(**overrides: Optional[str]) -> Iterator[None]:
    """Temporarily set/unset environment variables (None removes)."""
    saved = {name: os.environ.get(name) for name in overrides}
    try:
        for name, value in overrides.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def chaos_differential_point(
    experiment: Any,
    n_cores: int,
    warmup: float,
    measure: float,
    jobs: int = 2,
    chaos: str = "kill=0.3,exc=1,seed=11",
    retries: int = 3,
    task_timeout: float = 0.0,
) -> Tuple[List[Any], List[Any], List[Any]]:
    """Fault-injected runs must still produce float-identical results.

    Runs one colocation point fault-free, then again under
    deterministic ``REPRO_CHAOS`` injection with retries enabled —
    each against its own throwaway cache directory so every fault
    actually fires instead of being absorbed by a warm cache — and
    demands the two sweeps agree float-for-float. The chaotic pass
    gets a throwaway journal directory, so ``preempt`` faults (which
    checkpoint mid-simulation and resume on retry) work out of the
    box. Returns ``(baseline_points, chaotic_points,
    recovered_failures)``; the default spec injects a transient
    exception into *every* task (``exc=1``), so the recovered-failure
    list is never empty.
    """
    from repro.experiments.supervisor import stats

    with tempfile.TemporaryDirectory() as baseline_dir:
        with _environment(REPRO_CHAOS=None, REPRO_CACHE_DIR=baseline_dir,
                          REPRO_CACHE="on"):
            baseline = experiment.sweep([n_cores], warmup, measure, jobs=1)
    n_recovered = len(stats.recovered_failures)
    with tempfile.TemporaryDirectory() as chaotic_dir, \
            tempfile.TemporaryDirectory() as journal_dir:
        with _environment(
            REPRO_CHAOS=chaos,
            REPRO_CACHE_DIR=chaotic_dir,
            REPRO_CACHE="on",
            REPRO_RETRIES=str(retries),
            REPRO_TASK_TIMEOUT=str(task_timeout) if task_timeout else None,
            REPRO_BACKOFF="0.01",
            REPRO_JOURNAL_DIR=journal_dir,
        ):
            chaotic = experiment.sweep([n_cores], warmup, measure, jobs=jobs)
    recovered = stats.recovered_failures[n_recovered:]
    for base_point, chaos_point in zip(baseline, chaotic):
        for attr in ("c2m_isolated_run", "p2m_isolated_run", "colocated"):
            assert_results_identical(
                getattr(base_point, attr),
                getattr(chaos_point, attr),
                context=f"fault-free vs chaotic: {attr}",
            )
    if not recovered:
        raise AssertionError(
            "chaotic differential run recovered no injected faults "
            f"(spec {chaos!r} never fired)"
        )
    return baseline, chaotic, recovered


def resume_differential(
    build_host: Any,
    warmup: float,
    measure: float,
    at_events: Any,
    context: str = "",
) -> Tuple[Any, List[Dict[str, Any]]]:
    """Interrupted-and-resumed runs must be bit-identical to straight-through.

    ``build_host`` is a zero-argument callable returning a fresh,
    fully-built :class:`~repro.topology.host.Host`. The baseline runs
    uninterrupted; then, for each event count in ``at_events``, a
    fresh host is preempted in-process at that count
    (checkpoint-and-raise), restored from the blob via
    ``Host.restore`` and driven to completion with ``resume_run``.
    Every resumed RunResult is asserted float-identical to the
    baseline. Returns ``(baseline_result, fingerprints)`` where
    ``fingerprints`` are the :func:`result_fingerprint`\\ s of the
    resumed runs (each equal to the baseline's, by construction).
    """
    from repro.sim import checkpoint
    from repro.topology.host import Host

    baseline = build_host().run(warmup, measure)
    base_fp = result_fingerprint(baseline)
    fingerprints: List[Dict[str, Any]] = []
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "host.ckpt")
        for events in at_events:
            with _environment(REPRO_CKPT_PATH=path, REPRO_CKPT=None):
                try:
                    checkpoint.arm_preempt(int(events), exit_process=False)
                    try:
                        result = build_host().run(warmup, measure)
                        # The run finished before the armed count —
                        # nothing was interrupted; still a valid
                        # differential point.
                    except checkpoint.Preempted:
                        result = Host.restore(path).resume_run()
                finally:
                    checkpoint.disarm_preempt()
            where = f"{context}: " if context else ""
            assert_results_identical(
                baseline, result, context=f"{where}resume at event {events}"
            )
            fp = result_fingerprint(result)
            if fp != base_fp:
                raise AssertionError(
                    f"{where}resumed fingerprint diverges at event {events}"
                )
            fingerprints.append(fp)
    return baseline, fingerprints


def _with_validate(experiment: Any) -> Any:
    """Clone a ColocationExperiment with validation forced on."""
    from repro.experiments.runner import ColocationExperiment

    return ColocationExperiment(
        experiment.config,
        experiment.build_c2m,
        experiment.build_p2m,
        c2m_metric=experiment.c2m_metric,
        p2m_metric=experiment.p2m_metric,
        seed=experiment.seed,
        validate=True,
    )
