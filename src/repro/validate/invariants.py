"""Structured invariant violations and the ``REPRO_VALIDATE`` gate.

The paper's argument rests on accounting identities — per-domain
credit conservation, the throughput bound ``T <= C * 64 / L``, and
Little's-law consistency between occupancy counters and direct
timestamps (§4.2). :mod:`repro.validate` checks them at runtime so a
modelling bug fails loudly instead of silently producing
plausible-looking figures.

Environment knobs:

* ``REPRO_VALIDATE=1`` (also ``on``/``yes``/``true``) enables the
  checker; it is **off by default** so the engine fast path stays
  fast.
* ``REPRO_VALIDATE_TOL=<float>`` overrides the relative tolerance of
  the statistical (Little's-law / throughput-bound) checks; the
  structural checks (conservation, capacity, heap health) are exact
  and ignore it.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional, Tuple

#: default relative tolerance for steady-state statistical identities.
#: Window-edge effects (requests in flight across the reset boundary)
#: perturb short windows, so this is deliberately loose; structural
#: identities are checked exactly.
DEFAULT_TOLERANCE = 0.25

#: a statistical check needs this many latency samples to be meaningful
MIN_SAMPLES = 200


def enabled() -> bool:
    """Whether ``REPRO_VALIDATE`` asks for runtime invariant checking."""
    return os.environ.get("REPRO_VALIDATE", "").strip().lower() in (
        "1",
        "on",
        "yes",
        "true",
    )


def tolerance() -> float:
    """Relative tolerance for the statistical identities."""
    raw = os.environ.get("REPRO_VALIDATE_TOL", "").strip()
    if not raw:
        return DEFAULT_TOLERANCE
    try:
        value = float(raw)
    except ValueError as exc:
        raise ValueError(f"REPRO_VALIDATE_TOL must be a float, got {raw!r}") from exc
    if value <= 0:
        raise ValueError(f"REPRO_VALIDATE_TOL must be positive, got {value}")
    return value


class InvariantViolation(AssertionError):
    """A runtime accounting identity failed.

    Carries enough structure to localize the bug without a debugger:
    the component (``"core0.lfb"``, ``"mc.ch2.wpq"``, ``"engine"``),
    the identity that failed (``"credit-conservation"``,
    ``"littles-law"``, ...), the measurement window, and the observed
    values.
    """

    def __init__(
        self,
        component: str,
        identity: str,
        message: str,
        window: Optional[Tuple[float, float]] = None,
        details: Optional[Dict[str, Any]] = None,
    ):
        self.component = component
        self.identity = identity
        self.window = window
        self.details = dict(details or {})
        text = f"[{component}] {identity}: {message}"
        if window is not None:
            text += f" (window {window[0]:.1f}..{window[1]:.1f} ns)"
        if self.details:
            rendered = ", ".join(f"{k}={v!r}" for k, v in self.details.items())
            text += f" [{rendered}]"
        super().__init__(text)
