"""Runtime invariant checking for the host-network simulator.

Opt-in via ``REPRO_VALIDATE=1`` (or ``Host(..., validate=True)`` /
``ColocationExperiment(..., validate=True)``); off by default so the
engine fast path stays fast. See :mod:`repro.validate.invariants` for
the identities checked and :mod:`repro.validate.harness` for the
differential (serial / parallel / cached / validated) parity harness.

Usage::

    REPRO_VALIDATE=1 python -m pytest benchmarks/ --benchmark-only

or programmatically::

    from repro import Host, cascade_lake
    host = Host(cascade_lake(), validate=True)
    result = host.run()
    assert result.invariant_checks > 0
"""

from repro.validate.engine import (
    ValidatingSimulator,
    dispatch_equivalence_selftest,
    verify_heap,
)
from repro.validate.invariants import (
    DEFAULT_TOLERANCE,
    InvariantViolation,
    enabled,
    tolerance,
)
from repro.validate.probes import Validator

__all__ = [
    "DEFAULT_TOLERANCE",
    "InvariantViolation",
    "ValidatingSimulator",
    "Validator",
    "dispatch_equivalence_selftest",
    "enabled",
    "tolerance",
    "verify_heap",
]
