"""repro — reproduction of "Understanding the Host Network" (SIGCOMM 2024).

The package provides:

* a discrete-event **host-network simulator** (cores/LFB, CHA/LLC, MC
  with DDR4 banks and read/write mode switching, IIO, PCIe devices);
* the paper's **domain-by-domain credit-based flow control**
  abstraction (:mod:`repro.core`);
* the **analytical latency model** of \u00a76 (:mod:`repro.model`);
* application models (Redis/GAPBS/FIO) and networking case studies
  (RDMA RoCE/PFC, DCTCP);
* an experiment harness regenerating every table and figure
  (:mod:`repro.experiments`).

Quickstart::

    from repro import Host, cascade_lake, RequestKind

    host = Host(cascade_lake())
    host.add_stream_cores(2, store_fraction=0.0)   # C2M-Read on 2 cores
    host.add_nvme(kind=RequestKind.WRITE)          # FIO-like P2M writes
    result = host.run()
    print(result.mem_bw_total, result.latency("c2m_read"))
"""

from repro.sim.records import CACHELINE_BYTES, Request, RequestKind, RequestSource
from repro.topology.cluster import Cluster, ClusterResult
from repro.topology.host import Host, RunResult
from repro.topology.presets import HostConfig, cascade_lake, ice_lake

__version__ = "1.0.0"

__all__ = [
    "CACHELINE_BYTES",
    "Request",
    "RequestKind",
    "RequestSource",
    "Host",
    "RunResult",
    "Cluster",
    "ClusterResult",
    "HostConfig",
    "cascade_lake",
    "ice_lake",
    "__version__",
]
