#!/usr/bin/env python
"""Repo-wide lint gate with a stdlib fallback.

Preferred path: ``ruff check`` at the pinned version (``RUFF_PIN``,
mirrored by ``required-version`` in ``pyproject.toml``) over the whole
tree, using the minimal rule set configured there — syntax errors and
the F-class correctness rules (unused/redefined/undefined names), not
style.

The dev container does not ship ruff and installing dependencies is
not an option everywhere this runs, so when the pinned ruff is absent
the gate degrades to a built-in subset lint (stdlib only):

1. **byte-compile** every checked file (catches E9 syntax errors);
2. **unused module-level imports** (F401-lite): an imported name that
   never appears again anywhere in the file. Occurrence checking is
   textual, so string-typed annotations and doctests count as uses —
   conservative by design: the fallback must never flag code the real
   ruff accepts. ``__init__.py`` re-export files are skipped;
3. **duplicate definitions** (F811-lite): a plain (undecorated)
   function/class defined twice in the same scope; decorated defs are
   skipped so ``@property``/``@x.setter`` pairs and ``@overload``
   stacks don't false-positive.

Exit status 0 = clean; 1 = findings (each printed with file:line).
"""

from __future__ import annotations

import ast
import py_compile
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
CHECKED_DIRS = ("src", "tests", "benchmarks", "tools", "examples")

#: the pinned ruff version (keep in sync with pyproject.toml's
#: ``[tool.ruff] required-version``).
RUFF_PIN = "0.5.7"


def checked_files() -> list[Path]:
    files: list[Path] = []
    for d in CHECKED_DIRS:
        root = REPO / d
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
    return [f for f in files if "__pycache__" not in f.parts]


# ----------------------------------------------------------------------
# Preferred path: pinned ruff
# ----------------------------------------------------------------------


def ruff_version() -> str | None:
    """The installed ruff's version string, or None if unavailable."""
    exe = shutil.which("ruff")
    if exe is None:
        return None
    try:
        out = subprocess.run(
            [exe, "--version"], capture_output=True, text=True, timeout=30
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    match = re.search(r"(\d+\.\d+\.\d+)", out.stdout)
    return match.group(1) if match else None


def run_ruff() -> int:
    """``ruff check`` over the tree with the pyproject config."""
    cmd = ["ruff", "check", *CHECKED_DIRS]
    print(f"lint_check: ruff {RUFF_PIN}: {' '.join(cmd)}")
    return subprocess.run(cmd, cwd=REPO).returncode


# ----------------------------------------------------------------------
# Fallback: stdlib subset lint
# ----------------------------------------------------------------------


def compile_check(path: Path, problems: list[str]) -> ast.Module | None:
    """Byte-compile + parse; returns the AST or records the error."""
    try:
        py_compile.compile(str(path), doraise=True, cfile=None)
    except py_compile.PyCompileError as exc:
        problems.append(f"{path.relative_to(REPO)}: syntax error: {exc.msg}")
        return None
    try:
        return ast.parse(path.read_text(), filename=str(path))
    except SyntaxError as exc:  # pragma: no cover - compile caught it
        problems.append(f"{path.relative_to(REPO)}:{exc.lineno}: {exc.msg}")
        return None


def _imported_names(tree: ast.Module) -> list[tuple[str, int, str]]:
    """Module-level ``(bound_name, lineno, described)`` import bindings."""
    out = []
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                out.append((bound, node.lineno, alias.name))
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                out.append((bound, node.lineno, alias.name))
    return out


def unused_import_check(path: Path, tree: ast.Module, problems: list[str]) -> None:
    if path.name == "__init__.py":
        return  # re-export modules bind names for importers, not themselves
    source = path.read_text()
    lines = source.splitlines()
    for bound, lineno, described in _imported_names(tree):
        if bound == "annotations" and described == "annotations":
            continue  # from __future__ import annotations
        line = lines[lineno - 1] if lineno - 1 < len(lines) else ""
        if "noqa" in line:
            continue
        # Textual occurrence outside the import statement itself: a
        # word-boundary match anywhere (annotations, docstrings,
        # f-strings) counts as a use — conservative on purpose.
        occurrences = [
            m
            for m in re.finditer(rf"\b{re.escape(bound)}\b", source)
            if source.count("\n", 0, m.start()) + 1 != lineno
        ]
        if not occurrences:
            problems.append(
                f"{path.relative_to(REPO)}:{lineno}: "
                f"unused import: {described!r} (bound as {bound!r})"
            )


def duplicate_def_check(path: Path, tree: ast.Module, problems: list[str]) -> None:
    for scope in ast.walk(tree):
        if not isinstance(scope, (ast.Module, ast.ClassDef)):
            continue
        seen: dict[str, int] = {}
        for node in getattr(scope, "body", []):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if getattr(node, "decorator_list", None):
                    continue  # property/setter & overload stacks
                if node.name in seen:
                    problems.append(
                        f"{path.relative_to(REPO)}:{node.lineno}: "
                        f"duplicate definition of {node.name!r} "
                        f"(first at line {seen[node.name]})"
                    )
                seen[node.name] = node.lineno


def run_fallback() -> int:
    print(
        f"lint_check: ruff {RUFF_PIN} not available "
        "(pip install is not an option in this environment); "
        "running the built-in subset lint."
    )
    problems: list[str] = []
    files = checked_files()
    for path in files:
        tree = compile_check(path, problems)
        if tree is None:
            continue
        unused_import_check(path, tree, problems)
        duplicate_def_check(path, tree, problems)
    if problems:
        print(f"lint_check: {len(problems)} finding(s) in {len(files)} files:")
        for p in problems:
            print(f"  {p}")
        return 1
    print(f"lint_check: OK ({len(files)} files clean)")
    return 0


def main() -> int:
    installed = ruff_version()
    if installed == RUFF_PIN:
        return run_ruff()
    if installed is not None:
        print(
            f"lint_check: installed ruff {installed} != pinned {RUFF_PIN}; "
            "using the built-in subset lint for determinism."
        )
    return run_fallback()


if __name__ == "__main__":
    sys.exit(main())
