#!/usr/bin/env python
"""Checkpoint/preemption gate: kill-and-resume must be bit-identical.

``python tools/ckpt_check.py`` (``make ckpt``, part of ``make check``)
proves the checkpoint subsystem end-to-end, across real processes:

1. spawn a child running one fig03 point (quadrant 3, n=2 colocated —
   one of the committed fingerprint points) with
   ``REPRO_CKPT=events:5000`` pointed at a scratch blob;
2. wait for the first checkpoint to land, SIGTERM the child, and
   demand it exits with ``checkpoint.PREEMPT_EXIT_CODE`` (the
   graceful checkpoint-and-exit path, not the default signal death);
3. spawn a second child, which must *resume* from the blob; kill it
   again at a later checkpoint;
4. spawn a third child, which resumes and runs to completion; its
   :func:`~repro.validate.harness.result_fingerprint` must be
   bit-identical to the committed ``tests/data/fig03_fingerprint.json``
   entry for the point.

The whole scenario runs three times — (REPRO_KERNEL, REPRO_UNCORE) =
(on, on), (off, on) and (on, off) — so both DRAM channel
implementations and both uncore implementations are covered (the
off/off corner adds no new code path). The checkpoint blobs
reuse the run cache's RRC1+sha256 framing, so a corrupted blob is
quarantined and the run restarts fresh (covered by tier-1 tests).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

BASELINE = ROOT / "tests" / "data" / "fig03_fingerprint.json"
POINT_LABEL = "q3.n2.colocated"
QUADRANT = 3
N_CORES = 2
WARMUP, MEASURE = 3_000.0, 9_000.0  # FIG03_FINGERPRINT_WINDOWS

#: seconds to wait for a checkpoint blob / child exit before giving up
POLL_TIMEOUT_S = 180.0
POLL_INTERVAL_S = 0.02


def child(out_path: str) -> int:
    """Run the fingerprint point; exit 75 if checkpoint-preempted."""
    # Same knob pinning as tools/fig03_check.py — the fingerprint is
    # the exact per-line simulation. REPRO_KERNEL and REPRO_UNCORE are
    # left alone: the parent drives them.
    os.environ["REPRO_BURST"] = "1"
    for name in ("REPRO_VALIDATE", "REPRO_CHAOS", "REPRO_DDIO", "REPRO_BANK_REG"):
        os.environ.pop(name, None)

    from repro.experiments.quadrants import QUADRANTS, quadrant_experiment
    from repro.sim import checkpoint
    from repro.validate.harness import result_fingerprint

    experiment = quadrant_experiment(QUADRANTS[QUADRANT])
    try:
        result = experiment.run_colocated(N_CORES, WARMUP, MEASURE)
    except checkpoint.Preempted:
        # SIGTERM landed: the checkpoint is on disk, hand the exit
        # status to the supervisor-style parent.
        return checkpoint.PREEMPT_EXIT_CODE
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(result_fingerprint(result), fh)
    return 0


def _spawn(
    ckpt_path: str, out_path: str, kernel: str, uncore: str
) -> subprocess.Popen:
    env = dict(os.environ)
    env["REPRO_KERNEL"] = kernel
    env["REPRO_UNCORE"] = uncore
    env["REPRO_CKPT"] = "events:5000"
    env["REPRO_CKPT_PATH"] = ckpt_path
    env.pop("REPRO_CKPT_DIR", None)
    return subprocess.Popen(
        [sys.executable, os.path.abspath(__file__), "--child", out_path],
        env=env,
    )


def _stat_ns(path: str) -> int:
    """mtime_ns of ``path``, or -1 while it does not exist."""
    try:
        return os.stat(path).st_mtime_ns
    except FileNotFoundError:
        return -1


def _wait_for_checkpoint(ckpt_path: str, after_ns: int, what: str) -> int:
    """Poll until the blob (re)appears newer than ``after_ns``."""
    deadline = time.monotonic() + POLL_TIMEOUT_S
    while time.monotonic() < deadline:
        stamp = _stat_ns(ckpt_path)
        if stamp > after_ns:
            return stamp
        time.sleep(POLL_INTERVAL_S)
    raise SystemExit(f"FAIL: {what}: no checkpoint within {POLL_TIMEOUT_S:.0f}s")


def _kill_at_checkpoint(proc: subprocess.Popen, what: str) -> None:
    """SIGTERM the child; it must checkpoint and exit 75."""
    proc.send_signal(signal.SIGTERM)
    try:
        code = proc.wait(timeout=POLL_TIMEOUT_S)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise SystemExit(f"FAIL: {what}: child ignored SIGTERM")
    # Import lazily so the constant stays single-sourced.
    from repro.sim.checkpoint import PREEMPT_EXIT_CODE

    if code != PREEMPT_EXIT_CODE:
        raise SystemExit(
            f"FAIL: {what}: expected graceful preempt exit "
            f"{PREEMPT_EXIT_CODE}, got {code} (a plain signal death means "
            f"the SIGTERM-to-checkpoint handler never engaged)"
        )


def run_scenario(kernel: str, uncore: str, baseline: dict) -> None:
    tag = f"kernel={kernel} uncore={uncore}"
    with tempfile.TemporaryDirectory() as tmp:
        ckpt_path = os.path.join(tmp, "host.ckpt")
        out_path = os.path.join(tmp, "fingerprint.json")

        print(f"[{tag}] run 1: kill at first checkpoint")
        proc = _spawn(ckpt_path, out_path, kernel, uncore)
        _wait_for_checkpoint(ckpt_path, -1, f"{tag} run 1")
        _kill_at_checkpoint(proc, f"{tag} run 1")
        # The preemption itself wrote the final (newest) blob — stamp
        # *after* exit so run 2's wait sees only checkpoints written by
        # the resumed child.
        stamp = _stat_ns(ckpt_path)

        print(f"[{tag}] run 2: resume, kill at a later checkpoint")
        proc = _spawn(ckpt_path, out_path, kernel, uncore)
        _wait_for_checkpoint(ckpt_path, stamp, f"{tag} run 2")
        _kill_at_checkpoint(proc, f"{tag} run 2")

        print(f"[{tag}] run 3: resume to completion")
        proc = _spawn(ckpt_path, out_path, kernel, uncore)
        code = proc.wait(timeout=POLL_TIMEOUT_S * 2)
        if code != 0:
            raise SystemExit(
                f"FAIL: {tag} run 3: resumed child exited {code}"
            )
        with open(out_path, "r", encoding="utf-8") as fh:
            fingerprint = json.load(fh)

    expected = baseline[POINT_LABEL]
    diffs = [
        name for name, value in expected.items()
        if fingerprint.get(name) != value
    ]
    if diffs:
        raise SystemExit(
            f"FAIL: {tag}: twice-resumed {POINT_LABEL} diverges "
            f"from the committed fingerprint in: {', '.join(sorted(diffs))}"
        )
    print(
        f"[{tag}] ok: twice-killed, twice-resumed run is bit-identical "
        f"to the committed {POINT_LABEL} fingerprint"
    )


def main() -> int:
    if len(sys.argv) >= 3 and sys.argv[1] == "--child":
        return child(sys.argv[2])

    if not BASELINE.exists():
        print(f"FAIL: no committed baseline at {BASELINE}")
        return 1
    with open(BASELINE, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    if POINT_LABEL not in baseline:
        print(f"FAIL: {BASELINE} has no {POINT_LABEL!r} entry")
        return 1

    for kernel, uncore in (("on", "on"), ("off", "on"), ("on", "off")):
        run_scenario(kernel, uncore, baseline)

    print("ckpt check passed: SIGTERM-killed runs resume bit-identically "
          "with the DRAM and uncore kernels on and off")
    return 0


if __name__ == "__main__":
    sys.exit(main())
