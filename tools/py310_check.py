#!/usr/bin/env python
"""Python-version-floor gate (``requires-python = ">=3.10"``).

The dev interpreter is newer than the floor, so 3.11+-only APIs (like
``BaseException.add_note``, which once slipped into the parallel
executor) pass every test locally and break only for 3.10 users. This
gate makes the floor enforceable on any machine:

1. **API lint** (always runs): scan the tree for 3.11+/3.12+-only
   constructs — ``tomllib``, ``ExceptionGroup``, ``except*``,
   ``.add_note(``, ``asyncio.TaskGroup``, ``datetime.UTC``,
   ``StrEnum``, ``typing.Self`` — and fail unless the line carries a
   ``# py310-ok`` comment marking a guarded use.
2. **Compile + smoke** (when a 3.10 interpreter is present): byte-
   compile the whole tree under real 3.10, then run a validated
   mini-simulation (``REPRO_VALIDATE=1``) in it. Skipped with a
   notice when no 3.10 interpreter exists; the lint still gates.

Exit status 0 = floor holds; 1 = violations (each printed with
file:line).
"""

from __future__ import annotations

import glob
import os
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
CHECKED_DIRS = ("src", "tests", "benchmarks", "tools")
SUPPRESS = "# py310-ok"

#: (pattern, what it is) — APIs absent from Python 3.10.
BANNED = [
    (re.compile(r"\bimport\s+tomllib\b"), "tomllib (3.11+)"),
    (re.compile(r"\bfrom\s+tomllib\b"), "tomllib (3.11+)"),
    (re.compile(r"\bExceptionGroup\b"), "ExceptionGroup (3.11+)"),
    (re.compile(r"\bexcept\s*\*"), "except* (3.11+)"),
    (re.compile(r"\.add_note\("), "BaseException.add_note (3.11+)"),
    (re.compile(r"\basyncio\.TaskGroup\b"), "asyncio.TaskGroup (3.11+)"),
    (re.compile(r"\bdatetime\.UTC\b"), "datetime.UTC (3.11+)"),
    (re.compile(r"\bStrEnum\b"), "enum.StrEnum (3.11+)"),
    (re.compile(r"\btyping\.Self\b"), "typing.Self (3.11+)"),
    (re.compile(r"\bitertools\.batched\b"), "itertools.batched (3.12+)"),
]

SMOKE = """
import repro
from repro import Host, RequestKind, cascade_lake

host = Host(cascade_lake(), validate=True)
host.add_stream_cores(1, store_fraction=0.0)
host.add_raw_dma(RequestKind.WRITE, name="dma")
result = host.run(1_000.0, 3_000.0)
assert result.invariant_checks > 0, "validator ran no checks"
assert result.mem_bw_total > 0, "no traffic simulated"

# SoA channel kernel: drive the default (kernel-on) path explicitly and
# cross-check its incremental structures, with and without numpy.
import repro.dram.kernel as kernel_mod
from repro.sim.records import Request, RequestSource

assert kernel_mod.kernel_enabled(), "REPRO_KERNEL default must be on"

def kernel_smoke():
    from repro.dram.controller import Channel
    from repro.dram.timing import DDR4_2933
    from repro.sim.engine import Simulator
    from repro.telemetry.counters import CounterHub

    sim = Simulator()
    channel = Channel(sim, CounterHub(), channel_id=0, timing=DDR4_2933,
                      n_banks=8, rpq_size=64, wpq_size=64)
    assert channel.kernel is not None, "kernel not bound"
    for i in range(16):
        kind = RequestKind.READ if i % 2 else RequestKind.WRITE
        req = Request(RequestSource.C2M, kind, i)
        req.channel_id, req.bank_id, req.row_id = 0, i % 8, i % 3
        if kind is RequestKind.READ:
            channel.reserve_read(); channel.enqueue_read(req)
        else:
            channel.reserve_write(); channel.enqueue_write(req)
    sim.run_until(100_000.0)
    channel.kernel.verify_consistency()
    stats = channel.stats
    assert stats.lines_read == 8 and stats.lines_written == 8
    return channel.kernel.bank_state()

with_np = kernel_smoke()
kernel_mod.np = None  # pure-python fallback must behave identically
without_np = kernel_smoke()
assert list(with_np[0]) == list(without_np[0]), "bank_state diverged"

print(f"3.10 smoke: {result.invariant_checks} invariant checks passed; "
      "kernel smoke (numpy on/off) OK")
"""


def python_files() -> list:
    self_path = Path(__file__).resolve()
    files = []
    for top in CHECKED_DIRS:
        root = REPO / top
        if root.is_dir():
            files.extend(
                p for p in sorted(root.rglob("*.py"))
                # This file's pattern table would match itself.
                if p.resolve() != self_path
            )
    return files


def lint_api_floor() -> list:
    """Lines using 3.11+-only APIs without a ``# py310-ok`` marker."""
    problems = []
    for path in python_files():
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if SUPPRESS in line:
                continue
            for pattern, label in BANNED:
                if pattern.search(line):
                    rel = path.relative_to(REPO)
                    problems.append(f"{rel}:{lineno}: {label}: {line.strip()}")
    return problems


def find_py310() -> str:
    """A CPython 3.10 interpreter, or an empty string."""
    candidates = [shutil.which("python3.10") or ""]
    candidates += sorted(
        glob.glob(os.path.expanduser("~/.pyenv/versions/3.10*/bin/python3.10"))
    )
    for candidate in candidates:
        if not candidate:
            continue
        try:
            probe = subprocess.run(
                [candidate, "-c", "import sys; print(sys.version_info[:2])"],
                capture_output=True,
                text=True,
                timeout=30,
            )
        except (OSError, subprocess.TimeoutExpired):
            continue
        if probe.returncode == 0 and probe.stdout.strip() == "(3, 10)":
            return candidate
    return ""


def run_under_py310(py310: str) -> list:
    """Byte-compile the tree and run a validated smoke under 3.10."""
    problems = []
    compile_cmd = [py310, "-m", "compileall", "-q"]
    compile_cmd += [str(REPO / d) for d in CHECKED_DIRS if (REPO / d).is_dir()]
    result = subprocess.run(compile_cmd, capture_output=True, text=True)
    if result.returncode != 0:
        problems.append(
            "compileall under 3.10 failed:\n" + (result.stdout + result.stderr).strip()
        )
        return problems

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_VALIDATE"] = "1"
    env["REPRO_CACHE"] = "off"
    result = subprocess.run(
        [py310, "-c", SMOKE], capture_output=True, text=True, env=env
    )
    if result.returncode != 0:
        problems.append(
            "validated smoke under 3.10 failed:\n"
            + (result.stdout + result.stderr).strip()
        )
    else:
        print(result.stdout.strip())
    return problems


def main() -> int:
    problems = lint_api_floor()
    n_files = len(python_files())
    if not problems:
        print(f"API-floor lint: {n_files} files clean of 3.11+-only APIs")

    py310 = find_py310()
    if py310:
        problems += run_under_py310(py310)
    else:
        print("note: no python3.10 found; API-floor lint still gates")

    if problems:
        print(f"\npython-floor violations ({len(problems)}):", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print("python >=3.10 floor: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
