#!/usr/bin/env python
"""Profiling helper: where does a fig03 point actually spend time?

``python tools/profile_check.py`` (``make profile``) runs one short
fig03 point (quadrant 3, n=2 colocated — the same point the
checkpoint gate uses) in-process under cProfile and prints the top
functions by cumulative time. This is a diagnostic, not a gate: use
it to find the next hot path before reaching for a SoA kernel, and to
confirm a kernel actually moved the profile afterwards.

The run is pinned to the shapes the perf work targets:

* ``REPRO_JOBS=1`` — in-process, so cProfile sees the simulation
  instead of a supervisor waiting on worker processes;
* a throwaway ``REPRO_CACHE_DIR`` — a run-cache hit would profile
  nothing;
* ``REPRO_BURST=1`` and no validate/chaos/DDIO/bank-reg overrides —
  the plain per-line simulation, same as the fingerprint gates.

``REPRO_KERNEL`` and ``REPRO_UNCORE`` are left to the caller, so the
object-at-a-time reference paths and the SoA kernels can be profiled
side by side::

    make profile                       # both kernels on (defaults)
    REPRO_UNCORE=off make profile      # reference CHA/IIO path
    REPRO_KERNEL=off make profile      # reference DRAM channel path

Options: ``--sort tottime`` (default ``cumulative``), ``--top N``
(default 20).
"""

from __future__ import annotations

import argparse
import cProfile
import os
import pstats
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

QUADRANT = 3
N_CORES = 2
WARMUP, MEASURE = 3_000.0, 9_000.0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sort",
        choices=("cumulative", "tottime"),
        default="cumulative",
        help="pstats sort order (default: cumulative)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=20,
        help="number of rows to print (default: 20)",
    )
    args = parser.parse_args()

    os.environ["REPRO_JOBS"] = "1"
    os.environ["REPRO_BURST"] = "1"
    for name in ("REPRO_VALIDATE", "REPRO_CHAOS", "REPRO_DDIO", "REPRO_BANK_REG"):
        os.environ.pop(name, None)

    with tempfile.TemporaryDirectory() as tmp:
        os.environ["REPRO_CACHE_DIR"] = tmp
        from repro.experiments.quadrants import QUADRANTS, quadrant_experiment
        from repro.uncore.kernel import uncore_enabled

        try:
            from repro.dram.kernel import kernel_enabled
        except ImportError:  # pragma: no cover - kernel module is tier-1
            def kernel_enabled() -> bool:
                return False

        experiment = quadrant_experiment(QUADRANTS[QUADRANT])
        profiler = cProfile.Profile()
        profiler.enable()
        result = experiment.run_colocated(N_CORES, WARMUP, MEASURE)
        profiler.disable()

    print(
        f"profile_check: q{QUADRANT}.n{N_CORES}.colocated, "
        f"warmup={WARMUP:.0f} measure={MEASURE:.0f}, "
        f"{result.events_processed} events "
        f"(REPRO_KERNEL={'on' if kernel_enabled() else 'off'}, "
        f"REPRO_UNCORE={'on' if uncore_enabled() else 'off'})"
    )
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort)
    stats.print_stats(args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
