#!/usr/bin/env python
"""Cross-commit cluster fingerprint gate.

``python tools/cluster_check.py`` re-runs the 2-host RDMA smoke
cluster (one ``ib_write_bw`` flow plus a receiver-side STREAM core on
a small-queue fabric; see
``repro.validate.harness.cluster_smoke_run``) and compares both hosts'
RunResults and the fabric's switch-queue measurements bit-for-bit
against the committed baseline ``tests/data/cluster_fingerprint.json``.
Together with ``tools/fig03_check.py`` (which pins the bare single-host
results), it proves the multi-host coupling stack — engine injection,
counter namespacing, fabric queues, per-hop PFC, per-flow goodput
attribution — stays deterministic across commits.

``python tools/cluster_check.py --write`` refreshes the baseline —
only do this for changes that are *supposed* to alter simulated
behaviour, and say so in the commit message.
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

BASELINE = os.path.join(
    os.path.dirname(__file__), "..", "tests", "data", "cluster_fingerprint.json"
)


def main() -> int:
    # Same pinning discipline as fig03_check: the fingerprint is the
    # exact per-line simulation under default physics.
    os.environ["REPRO_BURST"] = "1"
    os.environ.pop("REPRO_VALIDATE", None)
    os.environ.pop("REPRO_CHAOS", None)
    os.environ.pop("REPRO_DDIO", None)
    os.environ.pop("REPRO_BANK_REG", None)

    from repro.validate.harness import (
        assert_cluster_smoke_matches,
        cluster_smoke_fingerprint,
    )

    if "--write" in sys.argv[1:]:
        os.makedirs(os.path.dirname(BASELINE), exist_ok=True)
        baseline = cluster_smoke_fingerprint()
        with open(BASELINE, "w", encoding="utf-8") as fh:
            json.dump(baseline, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"cluster fingerprint: wrote {len(baseline)} labels to {BASELINE}")
        return 0

    if not os.path.exists(BASELINE):
        print(f"cluster fingerprint: no baseline at {BASELINE}; run with --write")
        return 1
    compared = assert_cluster_smoke_matches(BASELINE)
    print(f"cluster fingerprint: {compared} labels bit-identical to baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
