#!/usr/bin/env python
"""Cross-commit fig03 fingerprint gate.

``python tools/fig03_check.py`` re-runs the reduced fig03 slice
(quadrants 1 and 3, small windows; see
``repro.validate.harness.FIG03_FINGERPRINT_SLICE``) and compares every
RunResult field bit-for-bit against the committed baseline
``tests/data/fig03_fingerprint.json``. A refactor that claims to be
behaviour-preserving must leave this gate green.

The gate also re-runs the DDIO smoke slice (one quadrant-1 point with
``REPRO_DDIO=1``; see ``repro.validate.harness.DDIO_SMOKE_SLICE``)
against ``tests/data/ddio_fingerprint.json``, so the fifth-domain
(llc.ddio) path is locked bit-for-bit too.

``python tools/fig03_check.py --write`` refreshes both baselines —
only do this for changes that are *supposed* to alter simulated
behaviour, and say so in the commit message.

``--time`` additionally reports the sweep's wall-clock seconds; the
``make bench-kernel`` tier runs it cold-serial (``REPRO_JOBS=1``,
fresh cache dir) to track the end-to-end fig03 cost over time.
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

BASELINE = os.path.join(
    os.path.dirname(__file__), "..", "tests", "data", "fig03_fingerprint.json"
)
DDIO_BASELINE = os.path.join(
    os.path.dirname(__file__), "..", "tests", "data", "ddio_fingerprint.json"
)


def main() -> int:
    # The fingerprint is the exact per-line simulation: pin the knobs
    # that legitimately change results so ad-hoc environments cannot
    # fail (or trivially pass) the gate.
    os.environ["REPRO_BURST"] = "1"
    os.environ.pop("REPRO_VALIDATE", None)
    os.environ.pop("REPRO_CHAOS", None)
    os.environ.pop("REPRO_DDIO", None)
    os.environ.pop("REPRO_BANK_REG", None)

    from repro.validate.harness import (
        assert_ddio_smoke_matches,
        assert_fig03_matches,
        ddio_smoke_fingerprint,
        fig03_fingerprint,
    )

    if "--write" in sys.argv[1:]:
        os.makedirs(os.path.dirname(BASELINE), exist_ok=True)
        baseline = fig03_fingerprint()
        with open(BASELINE, "w", encoding="utf-8") as fh:
            json.dump(baseline, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"fig03 fingerprint: wrote {len(baseline)} points to {BASELINE}")
        ddio = ddio_smoke_fingerprint()
        with open(DDIO_BASELINE, "w", encoding="utf-8") as fh:
            json.dump(ddio, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"ddio fingerprint: wrote {len(ddio)} points to {DDIO_BASELINE}")
        return 0

    if not os.path.exists(BASELINE):
        print(f"fig03 fingerprint: no baseline at {BASELINE}; run with --write")
        return 1
    t0 = time.perf_counter()
    compared = assert_fig03_matches(BASELINE)
    elapsed = time.perf_counter() - t0
    print(f"fig03 fingerprint: {compared} points bit-identical to baseline")
    if not os.path.exists(DDIO_BASELINE):
        print(f"ddio fingerprint: no baseline at {DDIO_BASELINE}; run with --write")
        return 1
    ddio_compared = assert_ddio_smoke_matches(DDIO_BASELINE)
    print(f"ddio fingerprint: {ddio_compared} points bit-identical to baseline")
    if "--time" in sys.argv[1:]:
        print(f"fig03 sweep wall-clock: {elapsed:.2f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
