"""Perf gate: engine events/sec against the committed baseline.

Runs the engine benchmarks (``benchmarks/bench_engine.py``:
empty-callback churn, event-train dispatch, the end-to-end
DRAM-traffic window owned by the SoA channel kernel, and the
uncore-bound window owned by the SoA uncore kernel) and compares
each events/sec figure against ``benchmarks/BENCH_engine.json``.

A result more than 25 % *below* baseline fails the gate (a perf
regression slipped in); more than 25 % *above* also fails (the
baseline is stale — refresh it so the gate keeps teeth; see
``benchmarks/README.md``). Knobs:

* ``REPRO_PERF_CHECK=off`` — skip the gate entirely (the one-line
  override for slow/shared CI boxes);
* ``REPRO_PERF_TOL=0.4`` — widen/narrow the +/- threshold.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
BASELINE = ROOT / "benchmarks" / "BENCH_engine.json"


def main() -> int:
    knob = os.environ.get("REPRO_PERF_CHECK", "on").strip().lower()
    if knob in ("off", "0", "no", "false"):
        print("perf_check: skipped (REPRO_PERF_CHECK=off)")
        return 0
    tolerance = float(os.environ.get("REPRO_PERF_TOL", "0.25"))
    if tolerance <= 0:
        print(f"perf_check: REPRO_PERF_TOL must be > 0, got {tolerance}")
        return 2
    baseline = json.loads(BASELINE.read_text())["benchmarks"]
    gated = [name for name, entry in baseline.items() if entry.get("gated")]

    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "bench.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(ROOT / "src")
        # The DRAM-window bench scales with REPRO_BENCH_SCALE; the
        # baseline is recorded at the default scale, so the gate must
        # run there even under e.g. `REPRO_BENCH_SCALE=smoke make check`.
        env.pop("REPRO_BENCH_SCALE", None)
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                "-q",
                "benchmarks/bench_engine.py",
                "--benchmark-only",
                "-k",
                "churn or train or dram or uncore",
                f"--benchmark-json={out}",
            ],
            cwd=ROOT,
            env=env,
        )
        if proc.returncode:
            print("perf_check: benchmark run failed")
            return proc.returncode
        measured = {
            bench["name"]: bench["extra_info"]["events_per_sec"]
            for bench in json.loads(out.read_text())["benchmarks"]
        }

    failures = []
    for name in gated:
        base = baseline[name]["events_per_sec"]
        got = measured.get(name)
        if got is None:
            failures.append(f"{name}: not measured")
            continue
        ratio = got / base
        verdict = "ok"
        if ratio < 1.0 - tolerance:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: {got:,} ev/s is {1.0 - ratio:.0%} below the "
                f"baseline {base:,}"
            )
        elif ratio > 1.0 + tolerance:
            verdict = "STALE BASELINE"
            failures.append(
                f"{name}: {got:,} ev/s is {ratio - 1.0:.0%} above the "
                f"baseline {base:,} — refresh benchmarks/BENCH_engine.json"
            )
        print(
            f"perf_check: {name}: {got:,} ev/s vs baseline {base:,} "
            f"({ratio:.2f}x) {verdict}"
        )
    if failures:
        print()
        print("perf_check: FAILED (REPRO_PERF_CHECK=off skips this gate)")
        for line in failures:
            print(f"  - {line}")
        return 1
    print(f"perf_check: all gated benchmarks within +/-{tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
