"""Chaos gate: the Fig. 3 sweep must survive deterministic faults.

Run as ``make chaos`` (also part of ``make check``). Three passes of
the fast-scale Figure 3 quadrant sweep:

1. **baseline** — fault-free, serial-friendly, fresh cache;
2. **chaotic** — fresh cache + journal, ``REPRO_CHAOS`` injecting
   worker kills, transient exceptions, cache-entry corruption and
   mid-simulation checkpoint preemptions (``preempt`` — the worker
   checkpoints, exits, and the retried attempt resumes the
   interrupted run from the blob), with retries enabled;
3. **chaotic replay** — same cache directory as pass 2, so the
   corrupted entries written there are detected, quarantined and
   recomputed.

All three must produce float-identical series, every injected fault
must be recovered (the pass-2/3 report lists each TaskFailure with
attempt counts), and the corruption pass must actually quarantine
entries. ``REPRO_BENCH_SCALE=smoke`` shrinks the sweep for quick
local iteration.
"""

from __future__ import annotations

import os
import sys
import tempfile
import time
import warnings
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

#: fast-scale Fig. 3 parameters (mirrors benchmarks/_common.py "fast")
SCALES = {
    "fast": dict(core_counts=(1, 2, 4, 6), warmup=40_000.0, measure=80_000.0),
    "smoke": dict(core_counts=(1, 4), warmup=6_000.0, measure=15_000.0),
}

CHAOS_SPEC = "kill=0.12,exc=0.35,corrupt=0.3,preempt=0.3,seed=1906"
RETRIES = "3"
BACKOFF = "0.02"


def set_env(**values: str) -> None:
    for name, value in values.items():
        if value:
            os.environ[name] = value
        else:
            os.environ.pop(name, None)


def run_fig3(scale: dict):
    from repro.experiments.figures import fig3

    start = time.monotonic()
    data = fig3(
        core_counts=scale["core_counts"],
        warmup=scale["warmup"],
        measure=scale["measure"],
    )
    return data, time.monotonic() - start


def compare(name: str, baseline, candidate) -> None:
    if baseline.x_values != candidate.x_values:
        raise SystemExit(f"FAIL: {name}: x values diverge")
    for series, values in baseline.series.items():
        got = candidate.series.get(series)
        if got != values:
            raise SystemExit(
                f"FAIL: {name}: series {series!r} diverges\n"
                f"  baseline: {values}\n  {name}: {got}"
            )
    print(f"ok: {name} is float-identical to the fault-free baseline")


def main() -> int:
    scale_name = os.environ.get("REPRO_BENCH_SCALE", "fast")
    scale = SCALES.get(scale_name, SCALES["fast"])
    jobs = os.environ.get("REPRO_JOBS", "2")

    from repro.experiments.reporting import render_failures
    from repro.experiments.supervisor import stats

    with tempfile.TemporaryDirectory() as base_dir, \
            tempfile.TemporaryDirectory() as chaos_dir, \
            tempfile.TemporaryDirectory() as journal_dir:
        set_env(
            REPRO_JOBS=jobs,
            REPRO_CACHE="on",
            REPRO_CACHE_DIR=base_dir,
            REPRO_CHAOS="",
            REPRO_RETRIES="",
            REPRO_JOURNAL_DIR="",
            REPRO_VALIDATE="",
        )
        print(f"[1/3] fault-free baseline fig03 ({scale_name} scale, jobs={jobs})")
        baseline, elapsed = run_fig3(scale)
        print(f"      done in {elapsed:.1f}s")

        set_env(
            REPRO_CACHE_DIR=chaos_dir,
            REPRO_CHAOS=CHAOS_SPEC,
            REPRO_RETRIES=RETRIES,
            REPRO_BACKOFF=BACKOFF,
            REPRO_JOURNAL_DIR=journal_dir,
        )
        before = stats.snapshot()
        n_recovered = len(stats.recovered_failures)
        print(f"[2/3] chaotic fig03 under REPRO_CHAOS={CHAOS_SPEC}")
        chaotic, elapsed = run_fig3(scale)
        delta = stats.delta(before)
        recovered = stats.recovered_failures[n_recovered:]
        print(f"      done in {elapsed:.1f}s; supervisor counters: {delta}")
        if recovered:
            print(render_failures(recovered, title="Recovered task failures (attempt counts)"))
        compare("chaotic run", baseline, chaotic)
        if not recovered:
            raise SystemExit("FAIL: chaos spec injected no recoverable faults")

        # Pass 3 replays against the chaotic cache: corrupt=0.3 poisoned
        # a deterministic subset of the entries written in pass 2, so
        # this pass must quarantine them and recompute.
        print("[3/3] replay against the corrupted cache (quarantine + recompute)")
        n_recovered = len(stats.recovered_failures)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            replay, elapsed = run_fig3(scale)
        quarantined = list((Path(chaos_dir) / "quarantine").glob("*.pkl"))
        recovered = stats.recovered_failures[n_recovered:]
        print(
            f"      done in {elapsed:.1f}s; quarantined {len(quarantined)} "
            f"corrupt entries ({len(caught)} warnings)"
        )
        if recovered:
            print(render_failures(recovered, title="Recovered task failures (attempt counts)"))
        compare("corrupted-cache replay", baseline, replay)
        if not quarantined:
            raise SystemExit("FAIL: corruption chaos never exercised quarantine")

    print("chaos check passed: sweeps survive kills, transient faults and "
          "cache corruption with float-identical results")
    return 0


if __name__ == "__main__":
    sys.exit(main())
