"""Figures 25/26 (Appendix D.2): DCTCP root-cause metrics.

Expected shape: the memory app's C2M-Read latency inflates with load
(slowing the copy); with the C2M-ReadWrite workload the WPQ fills more
and the P2M-Write latency inflates further.
"""

from _common import publish, run_once, scale
from repro.experiments.netfigs import fig25, fig26


def test_fig25_c2mread_tcp(benchmark):
    params = scale()
    data = run_once(
        benchmark,
        lambda: fig25(
            core_counts=params["dctcp_core_counts"],
            warmup=params["warmup_long"],
            measure=params["measure_long"],
        ),
    )
    publish(data)
    mem_lat = data.series["c2m_read_latency_mem"]
    if len(mem_lat) > 1:
        assert mem_lat[-1] > mem_lat[0]
    assert mem_lat[0] > 70.0  # inflated above the unloaded latency
    assert max(data.series["loss_rate"]) < 0.02


def test_fig26_c2mreadwrite_tcp(benchmark):
    params = scale()
    data = run_once(
        benchmark,
        lambda: fig26(
            core_counts=params["dctcp_core_counts"],
            warmup=params["warmup_long"],
            measure=params["measure_long"],
        ),
    )
    publish(data)
    assert data.series["wpq_full_fraction"][-1] >= data.series["wpq_full_fraction"][0]
    assert data.series["p2m_write_latency"][-1] > 300.0
