"""Figures 15-17 (Appendix B): real apps across all read/write combos.

Expected shape: C2M apps degrade, FIO does not, for every combination;
with P2M *reads* the DDIO on/off curves coincide (reads do not
allocate), while with P2M writes DDIO-on is at least as degraded.
"""

import numpy as np

from _common import publish, run_once, scale
from repro.experiments.appendix import fig15, fig16, fig17


def _series_pairs(data, apps):
    for app in apps:
        on = np.array(data.series[f"{app}_ddio_on_degradation"])
        off = np.array(data.series[f"{app}_ddio_off_degradation"])
        yield app, on, off


def test_fig15_write_apps_vs_p2m_write(benchmark):
    params = scale()
    data = run_once(
        benchmark,
        lambda: fig15(
            core_counts=params["core_counts"],
            warmup=params["warmup"],
            measure=params["measure"],
        ),
    )
    publish(data)
    for app, on, off in _series_pairs(data, ("redis_write", "gapbs_bc")):
        # GAPBS-BC is compute-heavy (lowest memory intensity of the
        # apps), so its degradation can be marginal at small scale.
        assert on.max() > (1.05 if app == "redis_write" else 1.0)
        assert off.max() > 0.95
        assert max(data.series[f"fio_ddio_on_degradation_vs_{app}"]) < 1.15


def test_fig16_read_apps_vs_p2m_read(benchmark):
    params = scale()
    data = run_once(
        benchmark,
        lambda: fig16(
            core_counts=params["core_counts"],
            warmup=params["warmup"],
            measure=params["measure"],
        ),
    )
    publish(data)
    for app, on, off in _series_pairs(data, ("redis", "gapbs")):
        # Reads do not allocate under DDIO: on/off should coincide.
        assert np.abs(on - off).mean() < 0.2
        assert max(data.series[f"fio_ddio_on_degradation_vs_{app}"]) < 1.15


def test_fig17_write_apps_vs_p2m_read(benchmark):
    params = scale()
    data = run_once(
        benchmark,
        lambda: fig17(
            core_counts=params["core_counts"],
            warmup=params["warmup"],
            measure=params["measure"],
        ),
    )
    publish(data)
    for app, on, off in _series_pairs(data, ("redis_write", "gapbs_bc")):
        assert np.abs(on - off).mean() < 0.2
        assert max(data.series[f"fio_ddio_off_degradation_vs_{app}"]) < 1.15
