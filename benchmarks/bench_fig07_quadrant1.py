"""Figure 7: root causes in quadrant 1 (C2M-Read + P2M-Write).

Expected shape: colocated C2M-Read latency and RPQ occupancy exceed
their isolated counterparts; the row-miss ratio rises when colocated;
the WPQ is rarely full; IIO write credits stay below the ~92 limit.
"""

import numpy as np

from _common import publish, run_once, scale
from repro.experiments.figures import fig7


def test_fig07_quadrant1(benchmark):
    params = scale()
    data = run_once(
        benchmark,
        lambda: fig7(
            core_counts=params["core_counts"],
            warmup=params["warmup"],
            measure=params["measure"],
        ),
    )
    publish(data)
    with_p2m = np.array(data.series["c2m_read_latency_with_p2m"])
    without = np.array(data.series["c2m_read_latency_without_p2m"])
    assert (with_p2m > without).all()
    rm_with = np.array(data.series["row_miss_ratio_with_p2m"])
    rm_without = np.array(data.series["row_miss_ratio_without_p2m"])
    assert rm_with.mean() > rm_without.mean()
    assert max(data.series["wpq_full_fraction"]) < 0.5
    assert max(data.series["iio_write_occupancy"]) < 88.0
    # Bank-deviation CDF shows real imbalance: a meaningful fraction of
    # samples exceed 1.5x (grid point index 2). Short smoke windows may
    # not accumulate a full 1000-request sample; skip the check then.
    cdf = data.series["bank_dev_cdf_with_p2m"]
    if not np.isnan(cdf[2]):
        assert cdf[2] < 0.95
