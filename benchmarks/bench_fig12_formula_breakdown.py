"""Figure 12: breakdown of the formula's queueing-delay components.

Expected shape: Q1 — WriteHoL dominant at 1 core, ReadHoL grows with
cores; Q2 — no WriteHoL (no writes); Q4 — ReadHoL dominant; Q3 — CHA
admission delay appears at high core counts.
"""

from _common import publish, run_once, scale
from repro.experiments.figures import fig12


def test_fig12_formula_breakdown(benchmark):
    params = scale()
    data = run_once(
        benchmark,
        lambda: fig12(
            core_counts=params["core_counts"],
            warmup=params["warmup_long"],
            measure=params["measure_long"],
        ),
    )
    publish(data)
    # Q1: WriteHoL >= ReadHoL at the lowest core count; ReadHoL grows.
    assert data.series["q1_write_hol"][0] >= data.series["q1_read_hol"][0]
    assert data.series["q1_read_hol"][-1] > data.series["q1_read_hol"][0]
    # Q2: no writes -> no WriteHoL / switching.
    assert max(data.series["q2_write_hol"]) < 1.0
    assert max(data.series["q2_switching"]) < 1.0
    # Q4: ReadHoL dominates at the highest load.
    assert data.series["q4_read_hol"][-1] >= data.series["q4_write_hol"][-1]
    # Q3: write-side (P2M) components present under saturation.
    assert data.series["q3_p2m_read_hol"][-1] > 0.0
