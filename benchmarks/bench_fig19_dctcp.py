"""Figure 19 (Appendix C.2): DCTCP receive-side colocation.

Expected shape: both the memory app and the network app degrade; the
memory app degrades more (it is more memory-intensive than the copy).
"""

from _common import publish, run_once, scale
from repro.experiments.netfigs import fig19


def test_fig19_dctcp(benchmark):
    params = scale()
    data = run_once(
        benchmark,
        lambda: fig19(
            core_counts=params["dctcp_core_counts"],
            warmup=params["warmup_long"],
            measure=params["measure_long"],
        ),
    )
    publish(data)
    for tag in ("c2mread", "c2mrw"):
        mem = data.series[f"{tag}_memory_app_degradation"]
        net = data.series[f"{tag}_network_app_degradation"]
        assert max(mem) > 1.1
        assert max(net) > 1.05
        # The memory app degrades at least as much at low load.
        assert mem[0] >= net[0] - 0.1
