"""Figure 18 (Appendix C.1): the four quadrants with RDMA traffic.

Expected shape: same regime structure as Fig. 3 with slightly milder
magnitudes (the NIC pushes ~98 Gb/s vs the SSDs' ~112 Gb/s).
"""

from _common import publish, run_once, scale
from repro.experiments.netfigs import fig18


def test_fig18_rdma_quadrants(benchmark):
    params = scale()
    data = run_once(
        benchmark,
        lambda: fig18(
            core_counts=params["core_counts"],
            warmup=params["warmup_long"],
            measure=params["measure_long"],
        ),
    )
    publish(data)
    for q in (1, 2, 4):
        assert max(data.series[f"q{q}_p2m_degradation"]) < 1.12
        assert max(data.series[f"q{q}_c2m_degradation"]) > 1.15
    # Q3: the write path inflates with load even if the NIC's lower
    # offered rate tolerates more inflation than the SSDs' (the P2M
    # degradation itself is milder than in Fig. 3; +-5% is noise).
    q3_p2m = data.series["q3_p2m_degradation"]
    assert q3_p2m[-1] >= q3_p2m[0] - 0.05
