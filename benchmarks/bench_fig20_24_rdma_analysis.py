"""Figures 20/21/22/24 (Appendix D.1): RDMA root-cause panels.

Expected shape: the same per-domain structure as the SSD quadrants —
C2M-Read latency inflates when colocated; in the write quadrants the
WPQ/backlog grows with load; in the read quadrants spare credits
absorb the inflation.
"""

import numpy as np

from _common import publish, run_once, scale
from repro.experiments.netfigs import fig20, fig21, fig22, fig24


def _run(benchmark, builder):
    params = scale()
    return run_once(
        benchmark,
        lambda: builder(
            core_counts=params["core_counts"],
            warmup=params["warmup_long"],
            measure=params["measure_long"],
        ),
    )


def test_fig20_rdma_quadrant1(benchmark):
    data = _run(benchmark, fig20)
    publish(data)
    with_p2m = np.array(data.series["c2m_read_latency_with_p2m"])
    without = np.array(data.series["c2m_read_latency_without_p2m"])
    assert (with_p2m > without).all()
    assert max(data.series["iio_write_occupancy"]) < 90.0


def test_fig21_rdma_quadrant2(benchmark):
    data = _run(benchmark, fig21)
    publish(data)
    assert data.series["p2m_read_latency"][-1] > data.series["p2m_read_latency"][0]


def test_fig22_rdma_quadrant3(benchmark):
    data = _run(benchmark, fig22)
    publish(data)
    p2m_lat = data.series["p2m_write_latency"]
    assert p2m_lat[-1] > 1.2 * p2m_lat[0]
    assert data.series["n_waiting"][-1] > data.series["n_waiting"][0]


def test_fig24_rdma_quadrant4(benchmark):
    data = _run(benchmark, fig24)
    publish(data)
    with_p2m = np.array(data.series["c2m_read_latency_with_p2m"])
    without = np.array(data.series["c2m_read_latency_without_p2m"])
    assert (with_p2m > without).all()
