"""Future-work mitigations (§7) under the red regime.

Compares quadrant 3 at high load under three policies:

* baseline — the paper's host as measured;
* hostCC-within-host — AIMD core throttling off the P2M-Write latency
  signal (``repro.ext.hostcc``);
* MC isolation — peripheral writes served ahead of core writebacks in
  write drains (``p2m_write_priority``).

Expected shape: both mitigations reduce P2M-Write latency; hostCC
restores P2M throughput at a steep C2M cost, MC priority is a milder
free win.
"""

from _common import publish, run_once, scale
from repro import Host, RequestKind, cascade_lake
from repro.experiments.figures import FigureData
from repro.ext import HostCongestionController


def test_ext_red_regime_mitigations(benchmark):
    params = scale()
    warmup, measure = params["warmup_long"], params["measure_long"]

    def build():
        variants = {}
        for name in ("baseline", "hostcc", "mc_priority"):
            host = Host(
                cascade_lake(p2m_write_priority=(name == "mc_priority"))
            )
            host.add_stream_cores(6, store_fraction=1.0)
            host.add_raw_dma(RequestKind.WRITE)
            if name == "hostcc":
                HostCongestionController(host, target_latency_ns=360.0)
            variants[name] = host.run(warmup, measure)
        data = FigureData(
            "ext_mitigations",
            "Red-regime mitigations (Q3, 6 C2M cores, Cascade Lake)",
            "variant",
            list(variants),
        )
        data.add(
            "p2m_bandwidth", [r.device_bandwidth("dma") for r in variants.values()]
        )
        data.add(
            "p2m_write_latency",
            [r.latency("p2m_write", "p2m") for r in variants.values()],
        )
        data.add(
            "c2m_bandwidth", [r.class_bandwidth("c2m") for r in variants.values()]
        )
        data.add("wpq_full_fraction", [r.wpq_full_fraction for r in variants.values()])
        return data

    data = run_once(benchmark, build)
    publish(data)
    base_lat, hostcc_lat, prio_lat = data.series["p2m_write_latency"]
    assert hostcc_lat < base_lat
    assert prio_lat < base_lat
    base_p2m, hostcc_p2m, _ = data.series["p2m_bandwidth"]
    base_c2m, hostcc_c2m, _ = data.series["c2m_bandwidth"]
    assert hostcc_p2m > base_p2m
    assert hostcc_c2m < base_c2m
