"""Shared infrastructure for the per-figure benchmarks.

Every benchmark regenerates one of the paper's tables or figures,
prints its rows/series, and writes them to ``benchmarks/output/`` so
the artifacts survive pytest's output capture. Simulation scale is
controlled with ``REPRO_BENCH_SCALE``:

* ``smoke`` — minimal windows, for CI sanity;
* ``fast``  — the default: shapes are stable, minutes of wall time;
* ``full``  — paper-like sweeps (longer windows, all core counts).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict

from repro.experiments.figures import FigureData
from repro.experiments.reporting import render_series

OUTPUT_DIR = Path(__file__).parent / "output"

_SCALES: Dict[str, Dict] = {
    "smoke": dict(
        core_counts=(1, 4),
        core_counts_wide=(4, 16),
        dctcp_core_counts=(2,),
        warmup=6_000.0,
        measure=15_000.0,
        warmup_long=20_000.0,
        measure_long=40_000.0,
    ),
    "fast": dict(
        core_counts=(1, 2, 4, 6),
        core_counts_wide=(4, 12, 20, 28),
        dctcp_core_counts=(2, 4),
        warmup=15_000.0,
        measure=40_000.0,
        warmup_long=40_000.0,
        measure_long=80_000.0,
    ),
    "full": dict(
        core_counts=(1, 2, 3, 4, 5, 6),
        core_counts_wide=(4, 8, 12, 16, 20, 24, 28),
        dctcp_core_counts=(1, 2, 3, 4),
        warmup=30_000.0,
        measure=100_000.0,
        warmup_long=60_000.0,
        measure_long=150_000.0,
    ),
}


def scale() -> Dict:
    """The active benchmark scale parameters."""
    name = os.environ.get("REPRO_BENCH_SCALE", "fast")
    if name not in _SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}, got {name!r}"
        )
    return dict(_SCALES[name])


def run_once(benchmark, fn):
    """Run a figure builder exactly once under pytest-benchmark.

    Figure builders are full experiment sweeps; repeating them for
    statistical timing would multiply minutes of work for no insight,
    so every benchmark uses a single round. The execution mode is
    recorded alongside the timing: a cached or 8-way-parallel number
    is not comparable to a cold serial one.
    """
    from repro.experiments import runcache
    from repro.experiments.parallel import default_jobs
    from repro.experiments.reporting import render_failures
    from repro.experiments.supervisor import stats
    from repro.validate import enabled as validate_enabled

    benchmark.extra_info["jobs"] = default_jobs()
    benchmark.extra_info["cache"] = "on" if runcache.enabled() else "off"
    benchmark.extra_info["validate"] = "on" if validate_enabled() else "off"
    benchmark.extra_info["chaos"] = os.environ.get("REPRO_CHAOS", "") or "off"
    before = stats.snapshot()
    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    delta = stats.delta(before)
    # Fault-tolerance accounting: a sweep that needed retries/requeues
    # is not timing-comparable to a clean one, so record it.
    for counter in ("retries", "requeues", "pool_failures", "timeouts", "recovered"):
        benchmark.extra_info[counter] = delta[counter]
    recovered = stats.recovered_failures[before["recovered"]:]
    if recovered:
        print()
        print(render_failures(recovered, title="Recovered task failures"))
    return result


def window_host(
    n_cores: int = 2,
    store_fraction: float = 1.0,
    dma_write: bool = True,
    dma_read: bool = False,
    **config_overrides,
):
    """A colocated STREAM + DMA host for the end-to-end window
    benchmarks.

    The window scenarios in ``bench_engine.py`` used to copy-paste
    this wiring; one builder keeps them from drifting apart.
    ``config_overrides`` are forwarded to
    :func:`~repro.topology.presets.cascade_lake`.
    """
    from repro.sim.records import RequestKind
    from repro.topology.host import Host
    from repro.topology.presets import cascade_lake

    host = Host(cascade_lake(**config_overrides))
    host.add_stream_cores(n_cores, store_fraction=store_fraction)
    if dma_write:
        host.add_raw_dma(RequestKind.WRITE, name="dma")
    if dma_read:
        host.add_raw_dma(RequestKind.READ, name="dma_read")
    return host


def report_window(benchmark, label: str, result):
    """Record and print one end-to-end window benchmark result."""
    assert result.events_processed > 0
    assert result.events_per_sec > 0
    benchmark.extra_info["events_per_sec"] = round(result.events_per_sec)
    print(
        f"\n{label}: {result.events_processed} events, "
        f"{result.events_per_sec:,.0f} events/s"
    )
    return result


def publish(data: FigureData) -> str:
    """Render a figure's series, print it, and save it to output/."""
    text = render_series(data.title, data.x_label, data.series, data.x_values)
    if data.notes:
        text = f"{text}\nNotes: {data.notes}"
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{data.figure_id}.txt").write_text(text + "\n")
    print()
    print(text)
    return text
