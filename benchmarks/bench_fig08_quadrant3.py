"""Figure 8: root causes in quadrant 3 (C2M-ReadWrite + P2M-Write).

Expected shape: beyond the saturation point the WPQ-full fraction and
N_waiting rise sharply, inflating P2M-Write latency while the C2M-Read
latency rises far less — the §5.2 asymmetry.
"""

from _common import publish, run_once, scale
from repro.experiments.figures import fig8


def test_fig08_quadrant3(benchmark):
    params = scale()
    data = run_once(
        benchmark,
        lambda: fig8(
            core_counts=params["core_counts"],
            warmup=params["warmup_long"],
            measure=params["measure_long"],
        ),
    )
    publish(data)
    wpq_full = data.series["wpq_full_fraction"]
    assert wpq_full[-1] > wpq_full[0]
    assert wpq_full[-1] > 0.3
    n_waiting = data.series["n_waiting"]
    assert n_waiting[-1] > 3 * n_waiting[0]
    p2m_lat = data.series["p2m_write_latency"]
    assert p2m_lat[-1] > 1.25 * p2m_lat[0]
    assert max(data.series["iio_write_occupancy"]) > 72.0
