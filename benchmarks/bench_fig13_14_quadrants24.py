"""Figures 13/14 (Appendix A): root causes in quadrants 2 and 4.

Expected shape: C2M-Read latency inflates when colocated, the in-flight
P2M read count stays below the read-domain credit limit (spare credits
mask the inflation), and the P2M-Read latency inflates without
throughput consequences.
"""

import numpy as np

from _common import publish, run_once, scale
from repro.experiments.appendix import fig13, fig14
from repro.topology.presets import cascade_lake


def _check(data):
    with_p2m = np.array(data.series["c2m_read_latency_with_p2m"])
    without = np.array(data.series["c2m_read_latency_without_p2m"])
    assert (with_p2m > without).all()
    credits = cascade_lake().iio_read_entries
    assert max(data.series["iio_read_occupancy"]) < credits
    p2m_lat = data.series["p2m_read_latency"]
    assert p2m_lat[-1] > p2m_lat[0]


def test_fig13_quadrant2(benchmark):
    params = scale()
    data = run_once(
        benchmark,
        lambda: fig13(
            core_counts=params["core_counts"],
            warmup=params["warmup"],
            measure=params["measure"],
        ),
    )
    publish(data)
    _check(data)


def test_fig14_quadrant4(benchmark):
    params = scale()
    data = run_once(
        benchmark,
        lambda: fig14(
            core_counts=params["core_counts"],
            warmup=params["warmup"],
            measure=params["measure"],
        ),
    )
    publish(data)
    _check(data)
