"""Figure 1: Redis / GAPBS vs FIO on Ice Lake (DDIO on).

Expected shape: the C2M apps degrade (Redis ~1.25-1.32x, GAPBS up to
~2x) while FIO stays at ~1.0, with memory bandwidth far from
saturation.
"""

from _common import publish, run_once, scale
from repro.experiments.figures import fig1


def test_fig01_real_apps(benchmark):
    params = scale()
    data = run_once(
        benchmark,
        lambda: fig1(
            core_counts=params["core_counts_wide"],
            warmup=params["warmup"],
            measure=params["measure"],
        ),
    )
    publish(data)
    for app in ("redis", "gapbs"):
        assert max(data.series[f"{app}_degradation"]) > 1.1
        assert max(data.series[f"fio_degradation_vs_{app}"]) < 1.1
        assert max(data.series[f"{app}_mem_util"]) < 0.9
