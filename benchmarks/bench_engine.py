"""Event-engine microbenchmark: raw events/sec.

Three views of the engine's dispatch cost, tracked in the perf
trajectory (baseline: ``BENCH_engine.json``, gated by
``tools/perf_check.py``):

* empty-callback churn — pure engine overhead (scheduling plus
  dispatch of mixed-delay singleton events), no model code;
* event-train dispatch — bulk ``schedule_many`` trains through the
  bucketed same-delay FIFO lane, the shape DMA bursts and timer
  wheels produce (falls back to per-member ``schedule`` on engines
  without the bulk API, so the same benchmark measures both);
* a realistic DRAM-traffic window — a colocated STREAM + DMA host,
  reporting the events/sec the simulator sustains end to end;
* uncore admission churn — the IIO credit pools and CHA ingress
  driven directly with the DRAM side stubbed out, isolating the hot
  path the ``REPRO_UNCORE`` SoA kernel fuses.
"""

from _common import report_window, run_once, scale, window_host
from repro.sim.engine import Simulator
from repro.sim.records import RequestKind
from repro.uncore.kernel import UncoreKernel, uncore_enabled

CHURN_EVENTS = 300_000
TRAIN_EVENTS = 300_000
TRAIN_LEN = 64
UNCORE_OPS = 240_000
UNCORE_REQS = 4_096


def test_engine_empty_callback_churn(benchmark):
    """Pure dispatch overhead: self-rescheduling no-op sources."""

    def churn() -> int:
        sim = Simulator()
        remaining = [CHURN_EVENTS]

        def tick() -> None:
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(1.0 + (remaining[0] % 7), tick)

        # 16 interleaved sources keep the heap realistically mixed.
        for i in range(16):
            sim.schedule(float(i), tick)
        sim.run_until(1e12)
        return sim.events_processed

    events = run_once(benchmark, churn)
    assert events >= CHURN_EVENTS
    rate = events / benchmark.stats.stats.mean
    benchmark.extra_info["events_per_sec"] = round(rate)
    print(f"\nengine churn: {events} events, {rate:,.0f} events/s")


def test_engine_train_dispatch(benchmark):
    """Bulk event trains: the same-delay FIFO lane at its design point."""

    member_args = [(i,) for i in range(TRAIN_LEN)]

    def trains() -> int:
        sim = Simulator()
        remaining = [TRAIN_EVENTS]
        bulk = getattr(sim, "schedule_many", None)

        def member(i) -> None:
            pass

        def launch(phase) -> None:
            n = remaining[0]
            if n <= 0:
                return
            batch = member_args if n >= TRAIN_LEN else member_args[:n]
            remaining[0] = n - len(batch)
            if bulk is not None:
                bulk(3.0, member, batch)
            else:  # engines without the bulk API: per-member scheduling
                for args in batch:
                    sim.schedule(3.0, member, *args)
            sim.schedule(5.0 + phase, launch, phase)

        # Four staggered launchers keep several trains in flight.
        for phase in range(4):
            sim.schedule(float(phase), launch, phase)
        sim.run_until(1e12)
        return sim.events_processed

    events = run_once(benchmark, trains)
    assert events >= TRAIN_EVENTS
    rate = events / benchmark.stats.stats.mean
    benchmark.extra_info["events_per_sec"] = round(rate)
    print(f"\nengine train dispatch: {events} events, {rate:,.0f} events/s")


def test_engine_dram_window_events_per_sec(benchmark):
    """End-to-end events/sec on a realistic colocated DRAM window."""
    params = scale()

    def run():
        host = window_host(n_cores=2, store_fraction=1.0)
        return host.run(params["warmup"], params["measure"])

    result = run_once(benchmark, run)
    report_window(benchmark, "DRAM window", result)


def test_engine_rack_window_events_per_sec(benchmark):
    """End-to-end events/sec on a 2-host rack window.

    Two full host networks on one shared engine, coupled by a fabric
    flow: the destination runs a write-heavy STREAM app while an
    ``ib_write_bw`` flow crosses the modelled edge switch queue into
    its receive NIC (the ``tools/cluster_check.py`` scenario at bench
    scale). Every host's RunResult carries the same engine-wide window
    event count, so host 0's rate is the cluster's. Recorded ungated
    in ``BENCH_engine.json``: a trajectory number for the coupling
    overhead, with no kernel owning the path yet.
    """
    from repro.net.rdma import add_rdma_write_flow
    from repro.topology.cluster import Cluster
    from repro.topology.presets import cascade_lake

    params = scale()

    def run():
        cluster = Cluster(cascade_lake(), n_hosts=2, queue_capacity_lines=512)
        cluster.hosts[0].add_stream_cores(2, store_fraction=1.0)
        add_rdma_write_flow(cluster, src=1, dst=0)
        return cluster.run(params["warmup"], params["measure"]).host(0)

    result = run_once(benchmark, run)
    report_window(benchmark, "rack window (2 hosts)", result)


def test_engine_uncore_churn_events_per_sec(benchmark):
    """IIO+CHA admission churn: the uncore hot path in isolation.

    Drives the IIO credit pools and the CHA ingress directly — one
    ``alloc -> request_admission -> release`` traversal per request,
    mixed reads and writes — against a memory controller with
    bottomless queues whose event loop is never driven, so the DRAM
    side is stubbed out entirely and the measured rate is the uncore
    path itself. This is the territory ``REPRO_UNCORE`` owns: the
    object-at-a-time CHA/IIO/credit path when off, the fused SoA
    kernel when on (``kernel_off_events_per_sec`` in the baseline
    records the same commit with the kernel off).
    """
    from repro.dram.controller import MemoryController
    from repro.dram.timing import DDR4_2933
    from repro.sim.records import Request, RequestSource
    from repro.telemetry.counters import CounterHub
    from repro.uncore.cha import CHA
    from repro.uncore.iio import IIO

    def churn() -> int:
        sim = Simulator()
        hub = CounterHub()
        mc = MemoryController(
            sim,
            hub,
            timing=DDR4_2933,
            n_channels=2,
            n_banks=8,
            rpq_size=1 << 20,
            wpq_size=1 << 20,
        )
        cha = CHA(sim, hub, mc, write_capacity=1 << 30, read_capacity=1 << 30)
        iio = IIO(sim, hub, write_entries=1 << 30, read_entries=1 << 30)
        if uncore_enabled():
            UncoreKernel(cha, iio)
        requests = []
        for i in range(UNCORE_REQS):
            kind = RequestKind.WRITE if i % 2 else RequestKind.READ
            req = Request(RequestSource.P2M, kind, i * 64, traffic_class="p2m")
            mc.assign(req)
            requests.append(req)
        alloc = iio.alloc
        admit = cha.request_admission
        release = iio.release
        ops = 0
        while ops < UNCORE_OPS:
            for req in requests:
                alloc(req)
                admit(req)
                release(req)
            ops += UNCORE_REQS
        if cha.kernel is not None:
            cha.kernel.verify_consistency()
        return ops

    ops = run_once(benchmark, churn)
    assert ops >= UNCORE_OPS
    rate = ops / benchmark.stats.stats.mean
    benchmark.extra_info["events_per_sec"] = round(rate)
    print(f"\nuncore churn: {ops} requests, {rate:,.0f} events/s")
