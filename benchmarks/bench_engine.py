"""Event-engine microbenchmark: raw events/sec.

Three views of the engine's dispatch cost, tracked in the perf
trajectory (baseline: ``BENCH_engine.json``, gated by
``tools/perf_check.py``):

* empty-callback churn — pure engine overhead (scheduling plus
  dispatch of mixed-delay singleton events), no model code;
* event-train dispatch — bulk ``schedule_many`` trains through the
  bucketed same-delay FIFO lane, the shape DMA bursts and timer
  wheels produce (falls back to per-member ``schedule`` on engines
  without the bulk API, so the same benchmark measures both);
* a realistic DRAM-traffic window — a colocated STREAM + DMA host,
  reporting the events/sec the simulator sustains end to end.
"""

from _common import run_once, scale
from repro.sim.engine import Simulator
from repro.sim.records import RequestKind
from repro.topology.host import Host
from repro.topology.presets import cascade_lake

CHURN_EVENTS = 300_000
TRAIN_EVENTS = 300_000
TRAIN_LEN = 64


def test_engine_empty_callback_churn(benchmark):
    """Pure dispatch overhead: self-rescheduling no-op sources."""

    def churn() -> int:
        sim = Simulator()
        remaining = [CHURN_EVENTS]

        def tick() -> None:
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(1.0 + (remaining[0] % 7), tick)

        # 16 interleaved sources keep the heap realistically mixed.
        for i in range(16):
            sim.schedule(float(i), tick)
        sim.run_until(1e12)
        return sim.events_processed

    events = run_once(benchmark, churn)
    assert events >= CHURN_EVENTS
    rate = events / benchmark.stats.stats.mean
    benchmark.extra_info["events_per_sec"] = round(rate)
    print(f"\nengine churn: {events} events, {rate:,.0f} events/s")


def test_engine_train_dispatch(benchmark):
    """Bulk event trains: the same-delay FIFO lane at its design point."""

    member_args = [(i,) for i in range(TRAIN_LEN)]

    def trains() -> int:
        sim = Simulator()
        remaining = [TRAIN_EVENTS]
        bulk = getattr(sim, "schedule_many", None)

        def member(i) -> None:
            pass

        def launch(phase) -> None:
            n = remaining[0]
            if n <= 0:
                return
            batch = member_args if n >= TRAIN_LEN else member_args[:n]
            remaining[0] = n - len(batch)
            if bulk is not None:
                bulk(3.0, member, batch)
            else:  # engines without the bulk API: per-member scheduling
                for args in batch:
                    sim.schedule(3.0, member, *args)
            sim.schedule(5.0 + phase, launch, phase)

        # Four staggered launchers keep several trains in flight.
        for phase in range(4):
            sim.schedule(float(phase), launch, phase)
        sim.run_until(1e12)
        return sim.events_processed

    events = run_once(benchmark, trains)
    assert events >= TRAIN_EVENTS
    rate = events / benchmark.stats.stats.mean
    benchmark.extra_info["events_per_sec"] = round(rate)
    print(f"\nengine train dispatch: {events} events, {rate:,.0f} events/s")


def test_engine_dram_window_events_per_sec(benchmark):
    """End-to-end events/sec on a realistic colocated DRAM window."""
    params = scale()

    def run():
        host = Host(cascade_lake())
        host.add_stream_cores(2, store_fraction=1.0)
        host.add_raw_dma(RequestKind.WRITE, name="dma")
        return host.run(params["warmup"], params["measure"])

    result = run_once(benchmark, run)
    assert result.events_processed > 0
    assert result.events_per_sec > 0
    benchmark.extra_info["events_per_sec"] = round(result.events_per_sec)
    print(
        f"\nDRAM window: {result.events_processed} events, "
        f"{result.events_per_sec:,.0f} events/s"
    )
