"""Event-engine microbenchmark: raw events/sec.

Two views of the fast path's gain, tracked in the perf trajectory:

* empty-callback churn — pure engine overhead (heap push/pop plus
  dispatch), no model code;
* a realistic DRAM-traffic window — a colocated STREAM + DMA host,
  reporting the events/sec the simulator sustains end to end.
"""

from _common import run_once, scale
from repro.sim.engine import Simulator
from repro.sim.records import RequestKind
from repro.topology.host import Host
from repro.topology.presets import cascade_lake

CHURN_EVENTS = 300_000


def test_engine_empty_callback_churn(benchmark):
    """Pure dispatch overhead: self-rescheduling no-op sources."""

    def churn() -> int:
        sim = Simulator()
        remaining = [CHURN_EVENTS]

        def tick() -> None:
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(1.0 + (remaining[0] % 7), tick)

        # 16 interleaved sources keep the heap realistically mixed.
        for i in range(16):
            sim.schedule(float(i), tick)
        sim.run_until(1e12)
        return sim.events_processed

    events = run_once(benchmark, churn)
    assert events >= CHURN_EVENTS
    rate = events / benchmark.stats.stats.mean
    benchmark.extra_info["events_per_sec"] = round(rate)
    print(f"\nengine churn: {events} events, {rate:,.0f} events/s")


def test_engine_dram_window_events_per_sec(benchmark):
    """End-to-end events/sec on a realistic colocated DRAM window."""
    params = scale()

    def run():
        host = Host(cascade_lake())
        host.add_stream_cores(2, store_fraction=1.0)
        host.add_raw_dma(RequestKind.WRITE, name="dma")
        return host.run(params["warmup"], params["measure"])

    result = run_once(benchmark, run)
    assert result.events_processed > 0
    assert result.events_per_sec > 0
    benchmark.extra_info["events_per_sec"] = round(result.events_per_sec)
    print(
        f"\nDRAM window: {result.events_processed} events, "
        f"{result.events_per_sec:,.0f} events/s"
    )
