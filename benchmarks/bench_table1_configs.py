"""Table 1: hardware configuration of the two simulated testbeds."""

import pytest

from _common import publish, run_once
from repro.experiments.figures import table1


def test_table1_configs(benchmark):
    data = run_once(benchmark, table1)
    publish(data)
    assert data.series["cascade-lake"][3] == pytest.approx(46.9, abs=0.1)
    assert data.series["ice-lake"][3] == pytest.approx(102.4, abs=0.5)
    assert data.series["ice-lake"][4] == 32.0
    assert data.series["cascade-lake"][4] == 16.0
