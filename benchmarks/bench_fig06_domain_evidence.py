"""Figure 6: evidence for domains and their characteristics.

Expected shape: (a) LFB latency strictly exceeds and tracks the
CHA->DRAM read latency; (c/d) the IIO (P2M-Write) latency includes the
CHA->MC write latency and their inflations move together.
"""

import numpy as np

from _common import publish, run_once, scale
from repro.experiments.figures import fig6


def test_fig06_domain_evidence(benchmark):
    params = scale()
    data = run_once(
        benchmark,
        lambda: fig6(
            core_counts=params["core_counts"],
            warmup=params["warmup"],
            measure=params["measure"],
        ),
    )
    publish(data)
    lfb = np.array(data.series["a_lfb_latency_c2m_read"])
    cha_dram = np.array(data.series["a_cha_dram_read_latency"])
    assert (lfb > cha_dram).all()
    # Inflation tracks: the latency gap stays roughly constant.
    gaps = lfb - cha_dram
    assert gaps.std() < 0.25 * gaps.mean()
    # Unloaded C2M-Read domain latency ~70 ns (paper §4.2).
    assert 55.0 <= lfb[0] <= 85.0
    # P2M-Write domain latency includes the CHA->MC write latency.
    iio = np.array(data.series["c_iio_latency_p2m_write"])
    cha_mc = np.array(data.series["c_cha_mc_write_latency"])
    assert (iio > cha_mc).all()
    assert 260.0 <= iio[0] <= 340.0  # ~300 ns unloaded
