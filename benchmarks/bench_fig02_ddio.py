"""Figure 2: DDIO on/off on Cascade Lake.

Expected shape: C2M apps degrade in both configurations; DDIO-on
degradation is at least as bad as DDIO-off (the paper's surprising
second-order effect), while FIO stays unaffected.
"""

import numpy as np

from _common import publish, run_once, scale
from repro.experiments.figures import fig2


def test_fig02_ddio(benchmark):
    params = scale()
    data = run_once(
        benchmark,
        lambda: fig2(
            core_counts=params["core_counts"],
            warmup=params["warmup"],
            measure=params["measure"],
        ),
    )
    publish(data)
    for app in ("redis", "gapbs"):
        on = np.array(data.series[f"{app}_ddio_on_degradation"])
        off = np.array(data.series[f"{app}_ddio_off_degradation"])
        assert on.max() > 1.05 and off.max() > 1.05
        # On average, DDIO-on is at least as degraded as DDIO-off.
        assert on.mean() >= off.mean() - 0.08
        assert max(data.series[f"fio_ddio_on_degradation_vs_{app}"]) < 1.15
