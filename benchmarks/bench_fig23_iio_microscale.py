"""Figure 23 (Appendix D.1): µs-scale IIO write-buffer occupancy under
RDMA quadrant 3.

Expected shape: PFC keeps enough data queued at the NIC that the IIO
write buffer stays near capacity throughout the trace.
"""

import numpy as np

from _common import publish, run_once, scale
from repro.experiments.netfigs import fig23


def test_fig23_iio_microscale(benchmark):
    params = scale()
    data = run_once(
        benchmark,
        lambda: fig23(
            core_counts=(params["core_counts"][-1],),
            warmup=params["warmup_long"],
            measure=min(params["measure"], 40_000.0),
        ),
    )
    publish(data)
    series = next(iter(data.series.values()))
    samples = np.array(series)
    assert samples.mean() > 50.0
    assert samples.max() <= 92.0
