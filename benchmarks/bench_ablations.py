"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation removes or resizes one mechanism the paper identifies as
a root cause and checks the predicted directional effect:

* bank placement (page scatter + XOR hash) -> blue-regime strength;
* WPQ size -> red-regime backpressure;
* IIO write credits -> P2M tolerance to latency inflation (§5.1's
  spare-credit argument);
* LFB size -> the C2M-Read bound T = C x 64 / L.
"""

import pytest

from _common import publish, run_once, scale
from repro import Host, RequestKind, cascade_lake
from repro.experiments.figures import FigureData
from repro.sim.records import CACHELINE_BYTES


def _q1_point(config, n_cores, warmup, measure):
    host = Host(config)
    host.add_stream_cores(n_cores, store_fraction=0.0)
    iso = host.run(warmup, measure)
    host = Host(config)
    host.add_stream_cores(n_cores, store_fraction=0.0)
    host.add_raw_dma(RequestKind.WRITE)
    co = host.run(warmup, measure)
    return iso, co


def test_ablation_bank_placement(benchmark):
    """Scattered pages + XOR hash drive the row-miss inflation of §5.1;
    hugepage-like contiguous placement keeps row locality near-perfect
    in isolation."""
    params = scale()

    def build():
        data = FigureData(
            "ablation_bank_placement",
            "Ablation: physical placement vs blue-regime root causes (Q1, 4 cores)",
            "variant",
            ["scatter+hash", "scatter, no hash", "contiguous"],
        )
        degradations, rm_iso, rm_co = [], [], []
        variants = [
            cascade_lake(),
            cascade_lake(xor_bank_hash=False),
            cascade_lake(page_scatter=False),
        ]
        for config in variants:
            iso, co = _q1_point(config, 4, params["warmup"], params["measure"])
            degradations.append(
                iso.class_bandwidth("c2m") / co.class_bandwidth("c2m")
            )
            rm_iso.append(iso.row_miss_ratio["c2m.read"])
            rm_co.append(co.row_miss_ratio["c2m.read"])
        data.add("c2m_degradation", degradations)
        data.add("row_miss_isolated", rm_iso)
        data.add("row_miss_colocated", rm_co)
        return data

    data = run_once(benchmark, build)
    publish(data)
    rm_iso = data.series["row_miss_isolated"]
    # Contiguous placement has near-perfect row locality in isolation.
    assert rm_iso[2] < 0.5 * rm_iso[0]
    # Every variant still shows colocation-driven row-miss inflation.
    for iso, co in zip(rm_iso, data.series["row_miss_colocated"]):
        assert co >= iso


def test_ablation_wpq_size(benchmark):
    """A smaller WPQ fills sooner, triggering the red-regime
    backpressure (write backlog at the CHA) at lower load."""
    params = scale()
    sizes = [16, 48, 96]

    def build():
        data = FigureData(
            "ablation_wpq_size",
            "Ablation: WPQ size vs red-regime backpressure (Q3, 5 cores)",
            "wpq_size",
            sizes,
        )
        fills, waits, p2m_lat = [], [], []
        for size in sizes:
            config = cascade_lake(wpq_size=size)
            host = Host(config)
            host.add_stream_cores(5, store_fraction=1.0)
            host.add_raw_dma(RequestKind.WRITE)
            run = host.run(params["warmup_long"], params["measure_long"])
            fills.append(run.wpq_full_fraction)
            waits.append(run.cha_write_waiting_avg)
            p2m_lat.append(run.latency("p2m_write", "p2m"))
        data.add("wpq_full_fraction", fills)
        data.add("n_waiting", waits)
        data.add("p2m_write_latency", p2m_lat)
        return data

    data = run_once(benchmark, build)
    publish(data)
    fills = data.series["wpq_full_fraction"]
    assert fills[0] > fills[-1]


def test_ablation_iio_write_credits(benchmark):
    """§5.1's spare-credit argument: more IIO write credits tolerate
    more latency inflation before P2M throughput degrades."""
    params = scale()
    credit_sizes = [48, 92, 184]

    def build():
        data = FigureData(
            "ablation_iio_credits",
            "Ablation: IIO write credits vs P2M degradation (Q3, 5 cores)",
            "iio_write_entries",
            credit_sizes,
        )
        iso_bw, co_bw, degradations = [], [], []
        for credits in credit_sizes:
            config = cascade_lake(iio_write_entries=credits)
            host = Host(config)
            host.add_raw_dma(RequestKind.WRITE)
            iso = host.run(params["warmup"], params["measure"])
            host = Host(config)
            host.add_stream_cores(5, store_fraction=1.0)
            host.add_raw_dma(RequestKind.WRITE)
            co = host.run(params["warmup_long"], params["measure_long"])
            iso_bw.append(iso.device_bandwidth("dma"))
            co_bw.append(co.device_bandwidth("dma"))
            degradations.append(iso_bw[-1] / co_bw[-1])
        data.add("p2m_isolated", iso_bw)
        data.add("p2m_colocated", co_bw)
        data.add("p2m_degradation", degradations)
        return data

    data = run_once(benchmark, build)
    publish(data)
    degradations = data.series["p2m_degradation"]
    assert degradations[0] > degradations[-1]


def test_ablation_lfb_size(benchmark):
    """The C2M-Read bound T = C x 64 / L: single-core bandwidth scales
    with the LFB credit pool (sub-linearly once latency rises)."""
    params = scale()
    sizes = [6, 10, 14]

    def build():
        data = FigureData(
            "ablation_lfb_size",
            "Ablation: LFB size vs single-core C2M-Read throughput",
            "lfb_size",
            sizes,
        )
        bandwidths, latencies, bounds = [], [], []
        for size in sizes:
            host = Host(cascade_lake(lfb_size=size))
            host.add_stream_cores(1, store_fraction=0.0)
            run = host.run(params["warmup"], params["measure"])
            bandwidths.append(run.class_bandwidth("c2m"))
            latencies.append(run.latency("c2m_read"))
            bounds.append(size * CACHELINE_BYTES / run.latency("c2m_read"))
        data.add("bandwidth", bandwidths)
        data.add("latency", latencies)
        data.add("bound_C64_over_L", bounds)
        return data

    data = run_once(benchmark, build)
    publish(data)
    bandwidths = data.series["bandwidth"]
    assert bandwidths[0] < bandwidths[1] < bandwidths[2]
    for bw, bound in zip(bandwidths, data.series["bound_C64_over_L"]):
        assert bw == pytest.approx(bound, rel=0.06)
