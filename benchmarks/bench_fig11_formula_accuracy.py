"""Figure 11: accuracy of the analytical formula's throughput estimates.

Expected shape (matching the paper's): C2M errors stay bounded for
quadrants 1/2/4 at every load; quadrant-3 C2M error *grows* with core
count once the red regime engages — the formula misses a latency source
there. On the paper's hardware that source is CHA admission delay and
the correction restores <10%; in the simulator part of the residual is
write-drain blocking, so the correction narrows but does not eliminate
the gap (documented in EXPERIMENTS.md).
"""

import numpy as np

from _common import publish, run_once, scale
from repro.experiments.figures import fig11


def test_fig11_formula_accuracy(benchmark):
    params = scale()
    data = run_once(
        benchmark,
        lambda: fig11(
            core_counts=params["core_counts"],
            warmup=params["warmup_long"],
            measure=params["measure_long"],
        ),
    )
    publish(data)
    # Read-stream quadrants hold at every load.
    for q in (1, 2):
        errors = np.abs(data.series[f"q{q}_c2m_error"])
        assert errors.max() < 0.25, f"q{q} error too large: {errors}"
        assert errors[0] < 0.12, f"q{q} unloaded error too large: {errors}"
    # The store-stream quadrant 4 shares quadrant 3's high-load error
    # growth (EXPERIMENTS.md, fidelity gap 2: write-drain blocking adds
    # a latency source the formula does not model, growing to ~30-50%
    # at 4-6 cores). Hold it tight at low load, and bound — rather than
    # leave unchecked — the store-stream residual at high load.
    q4 = np.abs(data.series["q4_c2m_error"])
    assert q4[0] < 0.12 and q4[1] < 0.20
    assert q4.max() < 0.60, f"q4 store-stream residual out of bounds: {q4}"
    raw = np.array(data.series["q3_c2m_error_raw"])
    corrected = np.array(data.series["q3_c2m_error_corrected"])
    # The paper's raw-Q3 signature: error grows with load (overestimate).
    assert raw[-1] > raw[0]
    # The CHA-admission correction never makes it worse.
    assert abs(corrected[-1]) <= abs(raw[-1]) + 0.02
    assert np.abs(data.series["q3_p2m_error_corrected"]).max() < 0.35
