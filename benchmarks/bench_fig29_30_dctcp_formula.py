"""Figures 29/30 (Appendix E.2): formula validation on the DCTCP study.

Expected shape: memory-app and network-app C2M estimates within ~25%
at simulator fidelity (the paper reports 10% on hardware, with one
high-loss outlier); breakdown components non-negative with WriteHoL
present (the NIC writes).
"""

import numpy as np

from _common import publish, run_once, scale
from repro.experiments.netfigs import fig29, fig30


def test_fig29_dctcp_formula_accuracy(benchmark):
    params = scale()
    data = run_once(
        benchmark,
        lambda: fig29(
            core_counts=params["dctcp_core_counts"],
            warmup=params["warmup_long"],
            measure=params["measure_long"],
        ),
    )
    publish(data)
    assert np.abs(data.series["c2mread_memory_app_error"]).max() < 0.40
    assert np.abs(data.series["c2mread_network_c2m_error"]).max() < 0.35
    assert np.abs(data.series["c2mread_network_p2m_error"]).max() < 0.35


def test_fig30_dctcp_formula_breakdown(benchmark):
    params = scale()
    data = run_once(
        benchmark,
        lambda: fig30(
            core_counts=params["dctcp_core_counts"],
            warmup=params["warmup_long"],
            measure=params["measure_long"],
        ),
    )
    publish(data)
    for name, series in data.series.items():
        assert all(v >= -1e-9 for v in series), name
    assert max(data.series["c2mread_c2m_write_hol"]) > 0.0
