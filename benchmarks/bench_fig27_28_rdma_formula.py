"""Figures 27/28 (Appendix E.1): formula validation on the RDMA study.

Expected shape: C2M errors bounded (~20% at simulator fidelity; the
paper reports 6.5% on hardware); component breakdowns mirror Fig. 12.
"""

import numpy as np

from _common import publish, run_once, scale
from repro.experiments.netfigs import fig27, fig28


def test_fig27_rdma_formula_accuracy(benchmark):
    params = scale()
    data = run_once(
        benchmark,
        lambda: fig27(
            core_counts=params["core_counts"],
            warmup=params["warmup"],
            measure=params["measure"],
        ),
    )
    publish(data)
    # Read-stream quadrants stay within ~25% at all loads; the
    # store-stream quadrants (3/4) share Fig. 11's high-load C2M error
    # growth (drain blocking the formula does not model), so only the
    # unloaded point is held tight there.
    for q in (1, 2):
        assert np.abs(data.series[f"q{q}_c2m_error"]).max() < 0.25
    for q in (3, 4):
        assert abs(data.series[f"q{q}_c2m_error"][0]) < 0.15
    assert np.abs(data.series["q3_p2m_error"]).max() < 0.25


def test_fig28_rdma_formula_breakdown(benchmark):
    params = scale()
    data = run_once(
        benchmark,
        lambda: fig28(
            core_counts=params["core_counts"],
            warmup=params["warmup"],
            measure=params["measure"],
        ),
    )
    publish(data)
    assert data.series["q1_write_hol"][0] >= data.series["q1_read_hol"][0]
    assert max(data.series["q2_write_hol"]) < 1.0
    assert data.series["q4_read_hol"][-1] >= data.series["q4_write_hol"][-1]
