"""Figure 3: blue and red regimes across the four quadrants.

Expected shape: C2M degrades in every quadrant while P2M stays ~1.0
(blue), except quadrant 3 where P2M degradation appears once memory
bandwidth saturates (red).
"""

from _common import publish, run_once, scale
from repro.experiments.figures import fig3


def test_fig03_quadrants(benchmark):
    params = scale()
    data = run_once(
        benchmark,
        lambda: fig3(
            core_counts=params["core_counts"],
            warmup=params["warmup_long"],
            measure=params["measure_long"],
        ),
    )
    publish(data)
    # Blue quadrants: P2M essentially unaffected everywhere.
    for q in (1, 2, 4):
        assert max(data.series[f"q{q}_p2m_degradation"]) < 1.12
        assert max(data.series[f"q{q}_c2m_degradation"]) > 1.2
    # Red quadrant: P2M degradation appears at the highest load.
    q3_p2m = data.series["q3_p2m_degradation"]
    assert q3_p2m[-1] > q3_p2m[0]
